//! Circles, including the *collision area* of the relevance estimator.
//!
//! The paper defines the collision area as "a circular region around the
//! intersection of object trajectories" whose radius is "the maximum length
//! of the respective objects" (§III-A1). [`Circle::segment_crossings`] is the
//! primitive used to compute when a trajectory enters and leaves that region.

use crate::{Segment2, Vec2};

/// A circle on the road plane.
///
/// # Examples
///
/// ```
/// use erpd_geometry::{Circle, Vec2};
///
/// let c = Circle::new(Vec2::ZERO, 2.0);
/// assert!(c.contains(Vec2::new(1.0, 1.0)));
/// assert!(!c.contains(Vec2::new(2.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Centre point.
    pub center: Vec2,
    /// Radius in metres (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    #[inline]
    pub fn new(center: Vec2, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid circle radius");
        Circle { center, radius }
    }

    /// The collision area of the paper: a circle at the trajectory crossing
    /// `point` whose radius is the maximum of the two object lengths.
    #[inline]
    pub fn collision_area(point: Vec2, len_a: f64, len_b: f64) -> Self {
        Circle::new(point, len_a.max(len_b))
    }

    /// True if the point lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Circle area.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// True if two circles overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_squared(other.center) <= r * r
    }

    /// The parameter range `t ∈ [0, 1]` of the segment that lies inside the
    /// circle, or `None` when the segment misses it entirely.
    ///
    /// This is the robust primitive behind
    /// [`crate::Polyline2::circle_intervals`]: unlike crossing-parity
    /// walking, it cannot lose track of containment when a boundary crossing
    /// coincides with a polyline vertex.
    pub fn segment_inside(&self, seg: &Segment2) -> Option<(f64, f64)> {
        let d = seg.delta();
        let f = seg.a - self.center;
        let a = d.norm_squared();
        if a <= f64::EPSILON {
            // Degenerate segment: inside iff its single point is inside.
            return self.contains(seg.a).then_some((0.0, 1.0));
        }
        let b = 2.0 * f.dot(d);
        let c = f.norm_squared() - self.radius * self.radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t0 = ((-b - sq) / (2.0 * a)).max(0.0);
        let t1 = ((-b + sq) / (2.0 * a)).min(1.0);
        (t1 > t0).then_some((t0, t1))
    }

    /// Parameters `t ∈ (0, 1)` at which the segment crosses the circle
    /// boundary, in increasing order (0, 1 or 2 values).
    pub fn segment_crossings(&self, seg: &Segment2) -> Vec<f64> {
        let d = seg.delta();
        let f = seg.a - self.center;
        let a = d.norm_squared();
        if a <= f64::EPSILON {
            return Vec::new();
        }
        let b = 2.0 * f.dot(d);
        let c = f.norm_squared() - self.radius * self.radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return Vec::new();
        }
        let sq = disc.sqrt();
        let mut out = Vec::new();
        for t in [(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)] {
            // Strict interior of the parameter range: an endpoint exactly on
            // the boundary does not flip containment.
            if t > 1e-12 && t < 1.0 - 1e-12 {
                out.push(t);
            }
        }
        out.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment() {
        let c = Circle::new(Vec2::new(1.0, 1.0), 1.0);
        assert!(c.contains(Vec2::new(1.0, 1.0)));
        assert!(c.contains(Vec2::new(2.0, 1.0))); // boundary
        assert!(!c.contains(Vec2::new(2.1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "invalid circle radius")]
    fn negative_radius_panics() {
        let _ = Circle::new(Vec2::ZERO, -1.0);
    }

    #[test]
    fn collision_area_uses_max_length() {
        let c = Circle::collision_area(Vec2::ZERO, 4.5, 0.8);
        assert_eq!(c.radius, 4.5);
    }

    #[test]
    fn chord_crossings() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        let seg = Segment2::new(Vec2::new(-2.0, 0.0), Vec2::new(2.0, 0.0));
        let ts = c.segment_crossings(&seg);
        assert_eq!(ts.len(), 2);
        assert!((ts[0] - 0.25).abs() < 1e-12);
        assert!((ts[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn segment_ending_inside_has_one_crossing() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        let seg = Segment2::new(Vec2::new(-2.0, 0.0), Vec2::new(0.0, 0.0));
        assert_eq!(c.segment_crossings(&seg).len(), 1);
    }

    #[test]
    fn miss_has_no_crossing() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        let seg = Segment2::new(Vec2::new(-2.0, 2.0), Vec2::new(2.0, 2.0));
        assert!(c.segment_crossings(&seg).is_empty());
    }

    #[test]
    fn tangent_grazes_are_dropped() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        let seg = Segment2::new(Vec2::new(-2.0, 1.0), Vec2::new(2.0, 1.0));
        // Tangent point is a double root; it does not flip containment so it
        // must not be reported twice.
        assert!(c.segment_crossings(&seg).len() <= 1);
    }

    #[test]
    fn circle_circle_intersection() {
        let a = Circle::new(Vec2::ZERO, 1.0);
        let b = Circle::new(Vec2::new(1.5, 0.0), 1.0);
        let c = Circle::new(Vec2::new(3.0, 0.0), 0.5);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn area() {
        let c = Circle::new(Vec2::ZERO, 2.0);
        assert!((c.area() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_has_no_crossings() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        let seg = Segment2::new(Vec2::new(0.5, 0.0), Vec2::new(0.5, 0.0));
        assert!(c.segment_crossings(&seg).is_empty());
    }
}
