//! Bivariate Gaussian distributions.
//!
//! Trajectory predictors in the literature the paper builds on (Social-LSTM
//! and friends, refs [24]–[26]) emit a bivariate Gaussian per predicted
//! waypoint. Our kinematic predictor does the same so the uncertainty-aware
//! parts of the relevance pipeline exercise the identical interface.

use crate::Vec2;

/// A bivariate Gaussian over the road plane.
///
/// # Examples
///
/// ```
/// use erpd_geometry::{BivariateGaussian, Vec2};
///
/// let g = BivariateGaussian::isotropic(Vec2::ZERO, 1.0).unwrap();
/// // The pdf peaks at the mean.
/// assert!(g.pdf(Vec2::ZERO) > g.pdf(Vec2::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BivariateGaussian {
    mean: Vec2,
    sigma_x: f64,
    sigma_y: f64,
    rho: f64,
}

impl BivariateGaussian {
    /// Creates a Gaussian with per-axis standard deviations and correlation
    /// `rho`. Returns `None` unless `sigma_x, sigma_y > 0` and `|rho| < 1`.
    pub fn new(mean: Vec2, sigma_x: f64, sigma_y: f64, rho: f64) -> Option<Self> {
        let ok = sigma_x.is_finite()
            && sigma_y.is_finite()
            && rho.is_finite()
            && sigma_x > 0.0
            && sigma_y > 0.0
            && rho.abs() < 1.0
            && mean.is_finite();
        ok.then_some(BivariateGaussian {
            mean,
            sigma_x,
            sigma_y,
            rho,
        })
    }

    /// Creates an isotropic (circular) Gaussian.
    pub fn isotropic(mean: Vec2, sigma: f64) -> Option<Self> {
        Self::new(mean, sigma, sigma, 0.0)
    }

    /// The mean.
    #[inline]
    pub fn mean(&self) -> Vec2 {
        self.mean
    }

    /// Standard deviation along x.
    #[inline]
    pub fn sigma_x(&self) -> f64 {
        self.sigma_x
    }

    /// Standard deviation along y.
    #[inline]
    pub fn sigma_y(&self) -> f64 {
        self.sigma_y
    }

    /// Correlation coefficient.
    #[inline]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Squared Mahalanobis distance from the mean to `p`.
    pub fn mahalanobis_squared(&self, p: Vec2) -> f64 {
        let dx = (p.x - self.mean.x) / self.sigma_x;
        let dy = (p.y - self.mean.y) / self.sigma_y;
        let one_m_r2 = 1.0 - self.rho * self.rho;
        (dx * dx - 2.0 * self.rho * dx * dy + dy * dy) / one_m_r2
    }

    /// Probability density at `p`.
    pub fn pdf(&self, p: Vec2) -> f64 {
        let one_m_r2 = 1.0 - self.rho * self.rho;
        let norm = 1.0 / (2.0 * std::f64::consts::PI * self.sigma_x * self.sigma_y * one_m_r2.sqrt());
        norm * (-0.5 * self.mahalanobis_squared(p)).exp()
    }

    /// Probability mass inside a circle, approximated by treating the
    /// distribution as the isotropic Gaussian whose sigma is the geometric
    /// mean of the axes (closed-form Rayleigh CDF). Exact for isotropic
    /// inputs centred on the circle; used as a cheap collision-probability
    /// proxy.
    pub fn mass_in_circle(&self, center: Vec2, radius: f64) -> f64 {
        if radius <= 0.0 {
            return 0.0;
        }
        let sigma = (self.sigma_x * self.sigma_y).sqrt();
        let d = self.mean.distance(center);
        // Rice-distribution CDF approximation via Marcum Q ~ use a simple
        // shifted-Rayleigh bound: mass of an isotropic Gaussian in a circle
        // offset by d, approximated by integrating the 1-D profile.
        let r2 = radius * radius;
        let s2 = 2.0 * sigma * sigma;
        if d < 1e-9 {
            return 1.0 - (-r2 / s2).exp();
        }
        // Numerical radial integration (few iterations, accurate to ~1e-4).
        // The integrand r/sigma^2 * exp(-(r^2+d^2)/(2 sigma^2)) * I0(r d / sigma^2)
        // is evaluated with the exponentially-scaled Bessel function so the
        // exp(z) growth of I0 and the Gaussian decay cancel analytically and
        // far offsets do not overflow.
        let steps = 64;
        let mut acc = 0.0;
        for i in 0..steps {
            let r = (i as f64 + 0.5) / steps as f64 * radius;
            let z = r * d / (sigma * sigma);
            let i0e = bessel_i0_scaled(z);
            let log_term = -(r * r + d * d) / s2 + z;
            acc += r / (sigma * sigma) * log_term.exp() * i0e * (radius / steps as f64);
        }
        acc.clamp(0.0, 1.0)
    }

    /// Grows the uncertainty with prediction horizon: returns a copy whose
    /// sigmas are inflated by `factor` (≥ 1 keeps it valid).
    pub fn inflated(&self, factor: f64) -> Option<BivariateGaussian> {
        Self::new(self.mean, self.sigma_x * factor, self.sigma_y * factor, self.rho)
    }
}

/// Exponentially-scaled modified Bessel function `I0(x) * exp(-|x|)`
/// (Abramowitz & Stegun 9.8.1/9.8.2 polynomial fits).
fn bessel_i0_scaled(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (ax / 3.75).powi(2);
        let i0 = 1.0
            + t * (3.5156229
                + t * (3.0899424 + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))));
        i0 * (-ax).exp()
    } else {
        let t = 3.75 / ax;
        (1.0 / ax.sqrt())
            * (0.39894228
                + t * (0.01328592
                    + t * (0.00225319
                        + t * (-0.00157565
                            + t * (0.00916281
                                + t * (-0.02057706
                                    + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(BivariateGaussian::new(Vec2::ZERO, 1.0, 1.0, 0.0).is_some());
        assert!(BivariateGaussian::new(Vec2::ZERO, 0.0, 1.0, 0.0).is_none());
        assert!(BivariateGaussian::new(Vec2::ZERO, 1.0, 1.0, 1.0).is_none());
        assert!(BivariateGaussian::new(Vec2::ZERO, 1.0, -1.0, 0.0).is_none());
        assert!(BivariateGaussian::new(Vec2::new(f64::NAN, 0.0), 1.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn pdf_peaks_at_mean_and_is_symmetric() {
        let g = BivariateGaussian::isotropic(Vec2::new(1.0, 2.0), 0.5).unwrap();
        let at_mean = g.pdf(Vec2::new(1.0, 2.0));
        for offset in [
            Vec2::new(0.3, 0.0),
            Vec2::new(-0.3, 0.0),
            Vec2::new(0.0, 0.3),
            Vec2::new(0.0, -0.3),
        ] {
            let p = g.pdf(Vec2::new(1.0, 2.0) + offset);
            assert!(p < at_mean);
            let q = g.pdf(Vec2::new(1.0, 2.0) - offset);
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let g = BivariateGaussian::new(Vec2::ZERO, 0.8, 1.3, 0.4).unwrap();
        let step = 0.1;
        let mut acc = 0.0;
        let mut x = -8.0;
        while x < 8.0 {
            let mut y = -8.0;
            while y < 8.0 {
                acc += g.pdf(Vec2::new(x, y)) * step * step;
                y += step;
            }
            x += step;
        }
        assert!((acc - 1.0).abs() < 1e-2, "integral = {acc}");
    }

    #[test]
    fn mahalanobis_units() {
        let g = BivariateGaussian::new(Vec2::ZERO, 2.0, 1.0, 0.0).unwrap();
        assert!((g.mahalanobis_squared(Vec2::new(2.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((g.mahalanobis_squared(Vec2::new(0.0, 1.0)) - 1.0).abs() < 1e-12);
        assert_eq!(g.mahalanobis_squared(Vec2::ZERO), 0.0);
    }

    #[test]
    fn mass_in_circle_centered() {
        let g = BivariateGaussian::isotropic(Vec2::ZERO, 1.0).unwrap();
        // 1-sigma circle of an isotropic Gaussian holds 1 - e^{-1/2} ≈ 39.3 %.
        let m = g.mass_in_circle(Vec2::ZERO, 1.0);
        assert!((m - 0.3934).abs() < 1e-3, "mass = {m}");
        // Huge circle holds everything.
        assert!(g.mass_in_circle(Vec2::ZERO, 10.0) > 0.999);
        // Zero radius holds nothing.
        assert_eq!(g.mass_in_circle(Vec2::ZERO, 0.0), 0.0);
    }

    #[test]
    fn mass_in_circle_offset_decreases_with_distance() {
        let g = BivariateGaussian::isotropic(Vec2::ZERO, 1.0).unwrap();
        let near = g.mass_in_circle(Vec2::new(1.0, 0.0), 1.0);
        let far = g.mass_in_circle(Vec2::new(4.0, 0.0), 1.0);
        assert!(near > far);
        assert!(far < 0.01);
    }

    #[test]
    fn inflation_grows_spread() {
        let g = BivariateGaussian::isotropic(Vec2::ZERO, 1.0).unwrap();
        let big = g.inflated(2.0).unwrap();
        assert_eq!(big.sigma_x(), 2.0);
        assert!(big.pdf(Vec2::ZERO) < g.pdf(Vec2::ZERO));
    }

    #[test]
    fn bessel_i0_scaled_sanity() {
        assert!((bessel_i0_scaled(0.0) - 1.0).abs() < 1e-9);
        // I0(1) e^-1 ~ 1.2660658 * 0.367879 ~ 0.46576
        assert!((bessel_i0_scaled(1.0) - 0.46576).abs() < 1e-4);
        // I0(5) e^-5 ~ 27.2398 * 0.0067379 ~ 0.18354
        assert!((bessel_i0_scaled(5.0) - 0.18354).abs() < 1e-4);
        // Huge arguments stay finite (this is the overflow-regression test).
        assert!(bessel_i0_scaled(5000.0).is_finite());
    }

    #[test]
    fn mass_in_circle_far_offset_small_sigma_no_overflow() {
        // Regression: sigma = 0.1, offset ~9.65, radius ~4.28 used to produce
        // inf * 0 = NaN inside the radial integration.
        let g = BivariateGaussian::isotropic(Vec2::ZERO, 0.1).unwrap();
        let m = g.mass_in_circle(Vec2::new(9.654703989490544, 0.0), 4.284452108464636);
        assert!((0.0..=1.0).contains(&m), "mass = {m}");
    }
}
