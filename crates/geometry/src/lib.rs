//! Geometry primitives for the ERPD vehicular-perception stack.
//!
//! This crate is the mathematical foundation of the reproduction of
//! *"Edge-Assisted Relevance-Aware Perception Dissemination in Vehicular
//! Networks"* (Wang & Cao, ICDCS 2024). It provides:
//!
//! * [`Vec2`] / [`Vec3`] — planar and spatial vectors,
//! * [`Pose2`] — SE(2) poses for vehicles and pedestrians,
//! * [`Transform3`] — the 4×4 LiDAR-to-world matrix `T_lw` of the paper's
//!   *Coordinate Transformation* module,
//! * [`Segment2`], [`Polyline2`] — trajectory geometry and crossings,
//! * [`Circle`] — the *collision area* around trajectory intersections,
//! * [`Obb2`] — oriented footprints for collision and occlusion tests,
//! * [`Interval`] — the passing-interval algebra behind `R_ci`,
//! * [`BivariateGaussian`] — per-waypoint prediction uncertainty,
//! * [`angle`] / [`stats`] — circular statistics and deviation metrics used
//!   by the crowd-clustering algorithm.
//!
//! # Examples
//!
//! Computing the collision-interval relevance ingredient for two crossing
//! trajectories:
//!
//! ```
//! use erpd_geometry::{Circle, Interval, Polyline2, Vec2};
//!
//! let a = Polyline2::new(vec![Vec2::new(-20.0, 0.0), Vec2::new(20.0, 0.0)]).unwrap();
//! let b = Polyline2::new(vec![Vec2::new(0.0, -20.0), Vec2::new(0.0, 20.0)]).unwrap();
//! let crossing = a.first_crossing(&b).unwrap();
//! let area = Circle::collision_area(crossing.point, 4.5, 4.5);
//!
//! // Arc-length intervals inside the collision area:
//! let ia = a.circle_intervals(&area)[0];
//! let ib = b.circle_intervals(&area)[0];
//! // At constant 10 m/s these become passing-time intervals:
//! let t1 = Interval::new(ia.0 / 10.0, ia.1 / 10.0).unwrap();
//! let t2 = Interval::new(ib.0 / 10.0, ib.1 / 10.0).unwrap();
//! assert!(t1.iou(&t2) > 0.99); // simultaneous arrival: near-certain conflict
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod angle;
mod circle;
mod gaussian;
mod interval;
mod obb;
mod polyline;
mod pose;
mod segment;
pub mod stats;
mod transform;
mod vec2;
mod vec3;

pub use circle::Circle;
pub use gaussian::BivariateGaussian;
pub use interval::Interval;
pub use obb::Obb2;
pub use polyline::{Polyline2, PolylineCrossing};
pub use pose::Pose2;
pub use segment::{Segment2, SegmentIntersection};
pub use transform::Transform3;
pub use vec2::Vec2;
pub use vec3::Vec3;
