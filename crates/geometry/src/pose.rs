//! Planar rigid-body poses (SE(2)).
//!
//! Every vehicle and pedestrian in the simulator carries a [`Pose2`]; the
//! LiDAR-to-world transform of the paper's *Coordinate Transformation*
//! module is the 3-D lift of the sensor vehicle's pose (see
//! [`crate::transform::Transform3`]).

use crate::angle::normalize_angle;
use crate::Vec2;
use std::fmt;

/// A position plus heading on the road plane.
///
/// The heading is measured counter-clockwise from +x, in radians, and is kept
/// normalised to `(-PI, PI]`.
///
/// # Examples
///
/// ```
/// use erpd_geometry::{Pose2, Vec2};
/// use std::f64::consts::FRAC_PI_2;
///
/// // A vehicle at the origin facing north sees a point 5 m ahead at
/// // world coordinates (0, 5).
/// let pose = Pose2::new(Vec2::ZERO, FRAC_PI_2);
/// let world = pose.to_world(Vec2::new(5.0, 0.0));
/// assert!((world - Vec2::new(0.0, 5.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose2 {
    /// Position of the body origin in world coordinates.
    pub position: Vec2,
    heading: f64,
}

impl Pose2 {
    /// Creates a pose; the heading is normalised to `(-PI, PI]`.
    #[inline]
    pub fn new(position: Vec2, heading: f64) -> Self {
        Pose2 {
            position,
            heading: normalize_angle(heading),
        }
    }

    /// The identity pose (origin, facing +x).
    #[inline]
    pub fn identity() -> Self {
        Pose2::new(Vec2::ZERO, 0.0)
    }

    /// Heading in radians, normalised to `(-PI, PI]`.
    #[inline]
    pub fn heading(&self) -> f64 {
        self.heading
    }

    /// Sets the heading (normalising it).
    #[inline]
    pub fn set_heading(&mut self, heading: f64) {
        self.heading = normalize_angle(heading);
    }

    /// Unit vector in the facing direction.
    #[inline]
    pub fn forward(&self) -> Vec2 {
        Vec2::from_angle(self.heading)
    }

    /// Unit vector 90° counter-clockwise from the facing direction
    /// (the body-frame "left").
    #[inline]
    pub fn left(&self) -> Vec2 {
        self.forward().perp()
    }

    /// Maps a point from the body frame to the world frame.
    #[inline]
    pub fn to_world(&self, local: Vec2) -> Vec2 {
        self.position + local.rotated(self.heading)
    }

    /// Maps a point from the world frame to the body frame.
    #[inline]
    pub fn to_local(&self, world: Vec2) -> Vec2 {
        (world - self.position).rotated(-self.heading)
    }

    /// Composition: applies `self` after `other` (i.e. `other` expressed in
    /// `self`'s frame becomes world).
    #[inline]
    pub fn compose(&self, other: Pose2) -> Pose2 {
        Pose2::new(
            self.to_world(other.position),
            self.heading + other.heading,
        )
    }

    /// The inverse pose, such that `p.compose(p.inverse())` is the identity.
    #[inline]
    pub fn inverse(&self) -> Pose2 {
        Pose2::new((-self.position).rotated(-self.heading), -self.heading)
    }

    /// Advances the pose `distance` metres along its heading.
    #[inline]
    pub fn advanced(&self, distance: f64) -> Pose2 {
        Pose2::new(self.position + self.forward() * distance, self.heading)
    }
}

impl Default for Pose2 {
    fn default() -> Self {
        Pose2::identity()
    }
}

impl fmt::Display for Pose2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {:.3} rad", self.position, self.heading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: Vec2, b: Vec2) -> bool {
        (a - b).norm() < 1e-10
    }

    #[test]
    fn identity_round_trip() {
        let p = Pose2::identity();
        let q = Vec2::new(3.0, -4.0);
        assert!(approx(p.to_world(q), q));
        assert!(approx(p.to_local(q), q));
    }

    #[test]
    fn world_local_inverse() {
        let pose = Pose2::new(Vec2::new(10.0, -5.0), 0.7);
        let pt = Vec2::new(2.0, 3.0);
        assert!(approx(pose.to_local(pose.to_world(pt)), pt));
        assert!(approx(pose.to_world(pose.to_local(pt)), pt));
    }

    #[test]
    fn heading_is_normalized() {
        let p = Pose2::new(Vec2::ZERO, 3.0 * PI);
        assert!((p.heading() - PI).abs() < 1e-12);
        let mut q = Pose2::identity();
        q.set_heading(-3.0 * PI);
        assert!((q.heading().abs() - PI).abs() < 1e-12);
    }

    #[test]
    fn forward_and_left() {
        let p = Pose2::new(Vec2::ZERO, FRAC_PI_2);
        assert!(approx(p.forward(), Vec2::UNIT_Y));
        assert!(approx(p.left(), -Vec2::UNIT_X));
    }

    #[test]
    fn compose_and_inverse() {
        let a = Pose2::new(Vec2::new(1.0, 2.0), 0.3);
        let b = Pose2::new(Vec2::new(-0.5, 4.0), -1.1);
        let ab = a.compose(b);
        // Composition maps the same as sequential mapping.
        let pt = Vec2::new(0.7, -0.2);
        assert!(approx(ab.to_world(pt), a.to_world(b.to_world(pt))));
        // Inverse undoes.
        let id = a.compose(a.inverse());
        assert!(approx(id.position, Vec2::ZERO));
        assert!(id.heading().abs() < 1e-12);
    }

    #[test]
    fn advanced_moves_along_heading() {
        let p = Pose2::new(Vec2::new(1.0, 1.0), FRAC_PI_2).advanced(2.0);
        assert!(approx(p.position, Vec2::new(1.0, 3.0)));
        assert!((p.heading() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Pose2::default(), Pose2::identity());
    }
}
