//! Oriented bounding boxes for vehicles, pedestrians, and buildings.
//!
//! The simulator uses OBBs for collision detection between vehicles (the
//! *safe passage* metric), for LiDAR occlusion testing, and for synthesising
//! per-object point clouds.

use crate::{Pose2, Segment2, Vec2};

/// A rectangle with arbitrary orientation on the road plane.
///
/// # Examples
///
/// ```
/// use erpd_geometry::{Obb2, Pose2, Vec2};
///
/// // A 4.5 m x 1.8 m car at the origin facing +x.
/// let car = Obb2::new(Pose2::identity(), 4.5, 1.8);
/// assert!(car.contains(Vec2::new(2.0, 0.5)));
/// assert!(!car.contains(Vec2::new(3.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obb2 {
    /// Pose of the box centre.
    pub pose: Pose2,
    /// Full length along the heading direction, metres.
    pub length: f64,
    /// Full width perpendicular to the heading, metres.
    pub width: f64,
}

impl Obb2 {
    /// Creates an oriented box centred at `pose` with the given footprint.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `width` is negative or non-finite.
    pub fn new(pose: Pose2, length: f64, width: f64) -> Self {
        assert!(
            length.is_finite() && length >= 0.0 && width.is_finite() && width >= 0.0,
            "invalid OBB extents"
        );
        Obb2 { pose, length, width }
    }

    /// The four corners in counter-clockwise order starting front-left.
    pub fn corners(&self) -> [Vec2; 4] {
        let hl = self.length / 2.0;
        let hw = self.width / 2.0;
        [
            self.pose.to_world(Vec2::new(hl, hw)),
            self.pose.to_world(Vec2::new(-hl, hw)),
            self.pose.to_world(Vec2::new(-hl, -hw)),
            self.pose.to_world(Vec2::new(hl, -hw)),
        ]
    }

    /// The four edges as segments, counter-clockwise.
    pub fn edges(&self) -> [Segment2; 4] {
        let c = self.corners();
        [
            Segment2::new(c[0], c[1]),
            Segment2::new(c[1], c[2]),
            Segment2::new(c[2], c[3]),
            Segment2::new(c[3], c[0]),
        ]
    }

    /// True if the point lies inside or on the box.
    pub fn contains(&self, p: Vec2) -> bool {
        let local = self.pose.to_local(p);
        local.x.abs() <= self.length / 2.0 + 1e-12 && local.y.abs() <= self.width / 2.0 + 1e-12
    }

    /// Separating-axis test against another box (boundary contact counts as
    /// intersection).
    pub fn intersects(&self, other: &Obb2) -> bool {
        let axes = [
            self.pose.forward(),
            self.pose.left(),
            other.pose.forward(),
            other.pose.left(),
        ];
        let ca = self.corners();
        let cb = other.corners();
        for axis in axes {
            let (mut amin, mut amax) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in ca {
                let d = p.dot(axis);
                amin = amin.min(d);
                amax = amax.max(d);
            }
            let (mut bmin, mut bmax) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in cb {
                let d = p.dot(axis);
                bmin = bmin.min(d);
                bmax = bmax.max(d);
            }
            if amax < bmin - 1e-12 || bmax < amin - 1e-12 {
                return false;
            }
        }
        true
    }

    /// Minimum distance between the boundaries of two boxes
    /// (0 when they intersect).
    pub fn distance(&self, other: &Obb2) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for ea in self.edges() {
            for eb in other.edges() {
                best = best.min(ea.distance_to_segment(&eb));
            }
        }
        best
    }

    /// Distance from a point to the box (0 when the point is inside).
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        let local = self.pose.to_local(p);
        let dx = (local.x.abs() - self.length / 2.0).max(0.0);
        let dy = (local.y.abs() - self.width / 2.0).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// True if the segment crosses or touches the box.
    pub fn intersects_segment(&self, seg: &Segment2) -> bool {
        if self.contains(seg.a) || self.contains(seg.b) {
            return true;
        }
        self.edges().iter().any(|e| e.intersect(seg).is_some())
    }

    /// Radius of the circumscribed circle.
    #[inline]
    pub fn circumradius(&self) -> f64 {
        (self.length * self.length + self.width * self.width).sqrt() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    fn car_at(x: f64, y: f64, heading: f64) -> Obb2 {
        Obb2::new(Pose2::new(Vec2::new(x, y), heading), 4.5, 1.8)
    }

    #[test]
    fn corners_of_axis_aligned_box() {
        let b = Obb2::new(Pose2::identity(), 4.0, 2.0);
        let c = b.corners();
        assert_eq!(c[0], Vec2::new(2.0, 1.0));
        assert_eq!(c[1], Vec2::new(-2.0, 1.0));
        assert_eq!(c[2], Vec2::new(-2.0, -1.0));
        assert_eq!(c[3], Vec2::new(2.0, -1.0));
    }

    #[test]
    fn containment_respects_rotation() {
        let b = Obb2::new(Pose2::new(Vec2::ZERO, FRAC_PI_4), 4.0, 0.5);
        // The tip of the box is along the 45-degree diagonal.
        let tip = Vec2::from_angle(FRAC_PI_4) * 1.9;
        assert!(b.contains(tip));
        // The same distance along +x is outside the (narrow) box.
        assert!(!b.contains(Vec2::new(1.9, 0.0)));
    }

    #[test]
    fn separated_boxes_do_not_intersect() {
        assert!(!car_at(0.0, 0.0, 0.0).intersects(&car_at(10.0, 0.0, 0.0)));
        assert!(!car_at(0.0, 0.0, 0.0).intersects(&car_at(0.0, 3.0, 0.0)));
    }

    #[test]
    fn overlapping_boxes_intersect() {
        assert!(car_at(0.0, 0.0, 0.0).intersects(&car_at(3.0, 0.0, 0.0)));
        // Rotated overlap (the classic SAT case that AABBs would miss).
        assert!(car_at(0.0, 0.0, 0.0).intersects(&car_at(3.0, 1.5, FRAC_PI_4)));
    }

    #[test]
    fn rotated_near_miss_requires_sat() {
        // An axis-aligned box and a diamond whose AABBs overlap (the
        // diamond's AABB reaches x = y = 0.69) but the boxes do not: the
        // diamond's diagonal axis separates them.
        let a = Obb2::new(Pose2::identity(), 2.0, 2.0);
        let b = Obb2::new(Pose2::new(Vec2::new(2.1, 2.1), FRAC_PI_4), 2.0, 2.0);
        assert!(!a.intersects(&b));
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn distance_between_boxes() {
        let a = car_at(0.0, 0.0, 0.0);
        let b = car_at(10.0, 0.0, 0.0);
        // Gap = 10 - 4.5 (two half-lengths of 2.25 each).
        assert!((a.distance(&b) - 5.5).abs() < 1e-9);
        assert_eq!(a.distance(&car_at(1.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn point_distance() {
        let b = Obb2::new(Pose2::identity(), 4.0, 2.0);
        assert_eq!(b.distance_to_point(Vec2::ZERO), 0.0);
        assert_eq!(b.distance_to_point(Vec2::new(2.0, 1.0)), 0.0); // corner
        assert!((b.distance_to_point(Vec2::new(5.0, 0.0)) - 3.0).abs() < 1e-12);
        assert!((b.distance_to_point(Vec2::new(0.0, 4.0)) - 3.0).abs() < 1e-12);
        // Diagonal from the corner.
        let d = b.distance_to_point(Vec2::new(5.0, 4.0));
        assert!((d - (9.0f64 + 9.0).sqrt()).abs() < 1e-12);
        // Rotation-aware.
        let r = Obb2::new(Pose2::new(Vec2::ZERO, FRAC_PI_4), 4.0, 2.0);
        assert_eq!(r.distance_to_point(Vec2::from_angle(FRAC_PI_4) * 1.9), 0.0);
    }

    #[test]
    fn segment_intersection() {
        let b = Obb2::new(Pose2::identity(), 4.0, 2.0);
        // Crossing ray.
        assert!(b.intersects_segment(&Segment2::new(Vec2::new(-5.0, 0.0), Vec2::new(5.0, 0.0))));
        // Ray ending inside.
        assert!(b.intersects_segment(&Segment2::new(Vec2::new(-5.0, 0.0), Vec2::new(0.0, 0.0))));
        // Ray passing above.
        assert!(!b.intersects_segment(&Segment2::new(Vec2::new(-5.0, 2.0), Vec2::new(5.0, 2.0))));
    }

    #[test]
    fn circumradius() {
        let b = Obb2::new(Pose2::identity(), 6.0, 8.0);
        assert!((b.circumradius() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid OBB extents")]
    fn negative_extent_panics() {
        let _ = Obb2::new(Pose2::identity(), -1.0, 2.0);
    }
}
