//! Three-dimensional vectors, used for LiDAR points and world coordinates.

use crate::Vec2;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector (or point) with `f64` components, in metres.
///
/// The LiDAR frame follows the usual vehicle convention: +x forward,
/// +y left, +z up, origin at the sensor.
///
/// # Examples
///
/// ```
/// use erpd_geometry::Vec3;
///
/// let p = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(p.norm(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component (up).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Lifts a planar point to 3-D at height `z`.
    #[inline]
    pub const fn from_xy(xy: Vec2, z: f64) -> Self {
        Vec3 { x: xy.x, y: xy.y, z }
    }

    /// Drops the z component, projecting onto the road plane.
    #[inline]
    pub const fn xy(self) -> Vec2 {
        Vec2 { x: self.x, y: self.y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Returns the vector scaled to unit length, or `None` for (near-)zero
    /// vectors.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    #[inline]
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from([x, y, z]: [f64; 3]) -> Self {
        Vec3::new(x, y, z)
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 0.0, 0.0);
        v -= Vec3::new(0.0, 1.0, 0.0);
        v *= 2.0;
        v /= 4.0;
        assert_eq!(v, Vec3::new(1.0, 0.0, 0.5));
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn norms() {
        let v = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(v.norm(), 3.0);
        assert_eq!(v.norm_squared(), 9.0);
        assert_eq!(v.distance(Vec3::ZERO), 3.0);
    }

    #[test]
    fn normalize() {
        let v = Vec3::new(0.0, 3.0, 4.0).try_normalize().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::ZERO.try_normalize().is_none());
    }

    #[test]
    fn planar_projection_round_trip() {
        let p = Vec3::new(1.5, -2.5, 0.7);
        assert_eq!(p.xy(), Vec2::new(1.5, -2.5));
        assert_eq!(Vec3::from_xy(p.xy(), 0.7), p);
    }

    #[test]
    fn conversions() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Vec3::from((1.0, 2.0, 3.0)), v);
        assert_eq!(Vec3::from([1.0, 2.0, 3.0]), v);
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_of_vectors() {
        let s: Vec3 = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 3.0)]
            .into_iter()
            .sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
