//! Homogeneous 3-D transforms.
//!
//! The paper's *Coordinate Transformation* module computes the
//! LiDAR-to-world matrix `T_lw` from each vehicle's SLAM pose and applies
//! `[Wx, Wy, Wz, 1]^T = T_lw · [x, y, z, 1]^T` to every uploaded point.
//! [`Transform3`] is exactly that 4×4 matrix (stored row-major), restricted
//! to rigid transforms by its constructors.

use crate::{Pose2, Vec2, Vec3};
use std::fmt;
use std::ops::Mul;

/// A 4×4 homogeneous transform, row-major.
///
/// Constructors only produce rigid transforms (rotation + translation), which
/// keeps [`Transform3::inverse`] cheap and exact.
///
/// # Examples
///
/// ```
/// use erpd_geometry::{Transform3, Vec3};
/// use std::f64::consts::FRAC_PI_2;
///
/// // LiDAR mounted 1.8 m above a vehicle at (10, 20) heading north.
/// let t = Transform3::lidar_to_world(erpd_geometry::Vec2::new(10.0, 20.0), FRAC_PI_2, 1.8);
/// let p = t.apply(Vec3::new(5.0, 0.0, 0.0)); // 5 m ahead of sensor
/// assert!((p - Vec3::new(10.0, 25.0, 1.8)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform3 {
    m: [[f64; 4]; 4],
}

impl Transform3 {
    /// The identity transform.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Transform3 { m }
    }

    /// A pure translation.
    pub fn translation(t: Vec3) -> Self {
        let mut out = Self::identity();
        out.m[0][3] = t.x;
        out.m[1][3] = t.y;
        out.m[2][3] = t.z;
        out
    }

    /// Rotation about the +z axis by `yaw` radians (counter-clockwise seen
    /// from above).
    pub fn rotation_z(yaw: f64) -> Self {
        let (s, c) = yaw.sin_cos();
        let mut out = Self::identity();
        out.m[0][0] = c;
        out.m[0][1] = -s;
        out.m[1][0] = s;
        out.m[1][1] = c;
        out
    }

    /// Rigid transform from a planar pose plus a height offset: rotate by the
    /// pose heading about z, then translate to `(pose.x, pose.y, z)`.
    pub fn from_pose2(pose: Pose2, z: f64) -> Self {
        Self::translation(Vec3::from_xy(pose.position, z)) * Self::rotation_z(pose.heading())
    }

    /// The LiDAR-to-world matrix `T_lw` of the paper: the sensor sits at
    /// `sensor_height` metres above the vehicle reference point located at
    /// `position` with the given `heading`.
    pub fn lidar_to_world(position: Vec2, heading: f64, sensor_height: f64) -> Self {
        Self::from_pose2(Pose2::new(position, heading), sensor_height)
    }

    /// Element access (row, column).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is ≥ 4.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.m[row][col]
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        let m = &self.m;
        Vec3::new(
            m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3],
        )
    }

    /// Applies only the rotational part (for directions).
    #[inline]
    pub fn apply_vector(&self, v: Vec3) -> Vec3 {
        let m = &self.m;
        Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        )
    }

    /// Inverse of a rigid transform (transpose the rotation, back-rotate the
    /// translation).
    pub fn inverse(&self) -> Transform3 {
        let m = &self.m;
        let mut out = Self::identity();
        // R^T
        for (i, row) in out.m.iter_mut().take(3).enumerate() {
            for (j, cell) in row.iter_mut().take(3).enumerate() {
                *cell = m[j][i];
            }
        }
        // -R^T t
        let t = Vec3::new(m[0][3], m[1][3], m[2][3]);
        let ti = out.apply_vector(t);
        out.m[0][3] = -ti.x;
        out.m[1][3] = -ti.y;
        out.m[2][3] = -ti.z;
        out
    }
}

impl Default for Transform3 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Mul for Transform3 {
    type Output = Transform3;
    fn mul(self, rhs: Transform3) -> Transform3 {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..4).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Transform3 { m }
    }
}

impl fmt::Display for Transform3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{:8.3} {:8.3} {:8.3} {:8.3}]", row[0], row[1], row[2], row[3])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-10
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert!(approx(Transform3::identity().apply(p), p));
        assert_eq!(Transform3::default(), Transform3::identity());
    }

    #[test]
    fn translation_moves_points_not_vectors() {
        let t = Transform3::translation(Vec3::new(1.0, 2.0, 3.0));
        assert!(approx(t.apply(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0)));
        assert!(approx(t.apply_vector(Vec3::new(1.0, 0.0, 0.0)), Vec3::new(1.0, 0.0, 0.0)));
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Transform3::rotation_z(FRAC_PI_2);
        assert!(approx(r.apply(Vec3::new(1.0, 0.0, 0.5)), Vec3::new(0.0, 1.0, 0.5)));
    }

    #[test]
    fn composition_order() {
        // translate-then-rotate differs from rotate-then-translate.
        let t = Transform3::translation(Vec3::new(1.0, 0.0, 0.0));
        let r = Transform3::rotation_z(PI);
        let p = Vec3::new(1.0, 0.0, 0.0);
        assert!(approx((r * t).apply(p), Vec3::new(-2.0, 0.0, 0.0)));
        assert!(approx((t * r).apply(p), Vec3::new(0.0, 0.0, 0.0)));
    }

    #[test]
    fn inverse_undoes() {
        let t = Transform3::lidar_to_world(Vec2::new(3.0, -7.0), 1.2, 1.8);
        let p = Vec3::new(4.0, 5.0, 6.0);
        assert!(approx(t.inverse().apply(t.apply(p)), p));
        assert!(approx(t.apply(t.inverse().apply(p)), p));
    }

    #[test]
    fn lidar_to_world_matches_paper_example() {
        // Sensor 1.8 m above a vehicle at (10, 20) heading +y: a point 5 m
        // ahead in the LiDAR frame lands 5 m north in the world.
        let t = Transform3::lidar_to_world(Vec2::new(10.0, 20.0), FRAC_PI_2, 1.8);
        assert!(approx(t.apply(Vec3::new(5.0, 0.0, 0.0)), Vec3::new(10.0, 25.0, 1.8)));
        // Ground points (z = -1.8 in sensor frame) land at world z = 0.
        let g = t.apply(Vec3::new(2.0, 1.0, -1.8));
        assert!(g.z.abs() < 1e-12);
    }

    #[test]
    fn from_pose2_consistent_with_pose_math() {
        let pose = Pose2::new(Vec2::new(-4.0, 9.0), 0.8);
        let t = Transform3::from_pose2(pose, 0.0);
        let local = Vec2::new(2.0, -1.0);
        let via_pose = pose.to_world(local);
        let via_mat = t.apply(Vec3::from_xy(local, 0.0));
        assert!(approx(via_mat, Vec3::from_xy(via_pose, 0.0)));
    }

    #[test]
    fn get_reads_elements() {
        let t = Transform3::translation(Vec3::new(7.0, 8.0, 9.0));
        assert_eq!(t.get(0, 3), 7.0);
        assert_eq!(t.get(1, 3), 8.0);
        assert_eq!(t.get(2, 3), 9.0);
        assert_eq!(t.get(3, 3), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Transform3::identity()).is_empty());
    }
}
