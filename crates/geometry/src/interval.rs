//! Closed time intervals and the interval algebra of the relevance formula.
//!
//! The paper quantifies a potential collision by comparing the *passing
//! intervals* `t1`, `t2` during which two objects occupy the collision area:
//! the **collision interval** is their overlap, and the relevance term is the
//! intersection-over-union `R_ci = |ci| / |t1 ∪ t2|` (§III-A1). [`Interval`]
//! implements exactly that algebra.

use std::fmt;

/// A closed interval `[start, end]` on the time axis, in seconds.
///
/// # Examples
///
/// ```
/// use erpd_geometry::Interval;
///
/// let t1 = Interval::new(2.0, 6.0).unwrap();
/// let t2 = Interval::new(4.0, 10.0).unwrap();
/// let ci = t1.intersection(&t2).unwrap();
/// assert_eq!(ci.length(), 2.0);
/// assert_eq!(t1.iou(&t2), 2.0 / 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    start: f64,
    end: f64,
}

impl Interval {
    /// Creates an interval; returns `None` when `start > end` or either bound
    /// is non-finite.
    pub fn new(start: f64, end: f64) -> Option<Self> {
        if start.is_finite() && end.is_finite() && start <= end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// Lower bound.
    #[inline]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Upper bound.
    #[inline]
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Length of the interval (`end - start`).
    #[inline]
    pub fn length(&self) -> f64 {
        self.end - self.start
    }

    /// True when the value lies inside the interval (inclusive).
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        (self.start..=self.end).contains(&t)
    }

    /// True when the intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The overlap of two intervals, if any. A single shared point yields a
    /// zero-length interval.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        Interval::new(s, e)
    }

    /// Length of the union of two intervals (handles disjoint intervals by
    /// summing their lengths, which is the measure-theoretic union used by
    /// the IoU formula).
    pub fn union_length(&self, other: &Interval) -> f64 {
        let inter = self
            .intersection(other)
            .map(|i| i.length())
            .unwrap_or(0.0);
        self.length() + other.length() - inter
    }

    /// Intersection-over-union of two intervals, in `[0, 1]`.
    ///
    /// Returns 0 when the union has zero length (two identical instants).
    pub fn iou(&self, other: &Interval) -> f64 {
        let u = self.union_length(other);
        if u <= f64::EPSILON {
            return 0.0;
        }
        let i = self
            .intersection(other)
            .map(|iv| iv.length())
            .unwrap_or(0.0);
        (i / u).clamp(0.0, 1.0)
    }

    /// Shifts the interval by `dt`.
    #[inline]
    pub fn shifted(&self, dt: f64) -> Interval {
        Interval {
            start: self.start + dt,
            end: self.end + dt,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(Interval::new(1.0, 0.0).is_none());
        assert!(Interval::new(f64::NAN, 1.0).is_none());
        assert!(Interval::new(0.0, f64::INFINITY).is_none());
        assert!(Interval::new(1.0, 1.0).is_some()); // degenerate allowed
    }

    #[test]
    fn basic_accessors() {
        let i = iv(2.0, 5.0);
        assert_eq!(i.start(), 2.0);
        assert_eq!(i.end(), 5.0);
        assert_eq!(i.length(), 3.0);
        assert!(i.contains(2.0) && i.contains(5.0) && i.contains(3.5));
        assert!(!i.contains(1.999) && !i.contains(5.001));
    }

    #[test]
    fn overlap_detection() {
        assert!(iv(0.0, 2.0).overlaps(&iv(1.0, 3.0)));
        assert!(iv(0.0, 2.0).overlaps(&iv(2.0, 3.0))); // touching
        assert!(!iv(0.0, 2.0).overlaps(&iv(2.1, 3.0)));
    }

    #[test]
    fn intersection_cases() {
        assert_eq!(iv(0.0, 4.0).intersection(&iv(2.0, 6.0)), Some(iv(2.0, 4.0)));
        assert_eq!(iv(0.0, 2.0).intersection(&iv(2.0, 3.0)), Some(iv(2.0, 2.0)));
        assert_eq!(iv(0.0, 1.0).intersection(&iv(2.0, 3.0)), None);
        // Nested intervals.
        assert_eq!(iv(0.0, 10.0).intersection(&iv(3.0, 4.0)), Some(iv(3.0, 4.0)));
    }

    #[test]
    fn union_length_cases() {
        assert_eq!(iv(0.0, 4.0).union_length(&iv(2.0, 6.0)), 6.0);
        assert_eq!(iv(0.0, 1.0).union_length(&iv(2.0, 3.0)), 2.0); // disjoint
        assert_eq!(iv(0.0, 10.0).union_length(&iv(3.0, 4.0)), 10.0); // nested
    }

    #[test]
    fn iou_matches_paper_formula() {
        // ci = 2, union = 8 -> R_ci = 0.25
        assert_eq!(iv(2.0, 6.0).iou(&iv(4.0, 10.0)), 0.25);
        // Identical intervals -> 1.
        assert_eq!(iv(1.0, 3.0).iou(&iv(1.0, 3.0)), 1.0);
        // Disjoint -> 0.
        assert_eq!(iv(0.0, 1.0).iou(&iv(5.0, 6.0)), 0.0);
        // Degenerate both-zero-length -> 0 (no NaN).
        assert_eq!(iv(1.0, 1.0).iou(&iv(1.0, 1.0)), 0.0);
    }

    #[test]
    fn shifting() {
        assert_eq!(iv(1.0, 2.0).shifted(3.0), iv(4.0, 5.0));
        assert_eq!(iv(1.0, 2.0).shifted(-1.0), iv(0.0, 1.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", iv(0.0, 1.0)).is_empty());
    }
}
