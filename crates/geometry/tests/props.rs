//! Property-based tests for the geometry crate.

use erpd_geometry::angle::{angle_dist, normalize_angle};
use erpd_geometry::{
    BivariateGaussian, Circle, Interval, Obb2, Polyline2, Pose2, Segment2, Transform3, Vec2, Vec3,
};
use erpd_rand::proptest::prelude::*;
use std::f64::consts::PI;

fn finite() -> impl Strategy<Value = f64> {
    -1e3..1e3
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (finite(), finite()).prop_map(|(x, y)| Vec2::new(x, y))
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite(), finite(), finite()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vec2_norm_triangle_inequality(a in vec2(), b in vec2()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn vec2_rotation_preserves_norm(v in vec2(), theta in -10.0f64..10.0) {
        prop_assert!((v.rotated(theta).norm() - v.norm()).abs() < 1e-6);
    }

    #[test]
    fn vec2_dot_cross_pythagoras(a in vec2(), b in vec2()) {
        // |a|^2 |b|^2 = dot^2 + cross^2
        let lhs = a.norm_squared() * b.norm_squared();
        let rhs = a.dot(b).powi(2) + a.cross(b).powi(2);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.max(1.0));
    }

    #[test]
    fn normalize_angle_in_range(a in -100.0f64..100.0) {
        let n = normalize_angle(a);
        prop_assert!(n > -PI - 1e-9 && n <= PI + 1e-9);
        // Equivalent direction.
        prop_assert!((n.sin() - a.sin()).abs() < 1e-6);
        prop_assert!((n.cos() - a.cos()).abs() < 1e-6);
    }

    #[test]
    fn angle_dist_symmetric_bounded(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let d = angle_dist(a, b);
        prop_assert!((d - angle_dist(b, a)).abs() < 1e-9);
        prop_assert!((-1e-9..=PI + 1e-9).contains(&d));
    }

    #[test]
    fn pose_round_trip(px in finite(), py in finite(), h in -10.0f64..10.0, q in vec2()) {
        let pose = Pose2::new(Vec2::new(px, py), h);
        let rt = pose.to_local(pose.to_world(q));
        prop_assert!((rt - q).norm() < 1e-6);
    }

    #[test]
    fn pose_compose_associative(h1 in -3.0f64..3.0, h2 in -3.0f64..3.0, p in vec2(), q in vec2(), r in vec2()) {
        let a = Pose2::new(p, h1);
        let b = Pose2::new(q, h2);
        let pt = r;
        let lhs = a.compose(b).to_world(pt);
        let rhs = a.to_world(b.to_world(pt));
        prop_assert!((lhs - rhs).norm() < 1e-6);
    }

    #[test]
    fn transform_inverse_round_trip(px in finite(), py in finite(), h in -10.0f64..10.0, z in -5.0f64..5.0, p in vec3()) {
        let t = Transform3::lidar_to_world(Vec2::new(px, py), h, z);
        let rt = t.inverse().apply(t.apply(p));
        prop_assert!((rt - p).norm() < 1e-6);
    }

    #[test]
    fn transform_is_rigid(px in finite(), py in finite(), h in -10.0f64..10.0, a in vec3(), b in vec3()) {
        let t = Transform3::lidar_to_world(Vec2::new(px, py), h, 1.8);
        let d_before = a.distance(b);
        let d_after = t.apply(a).distance(t.apply(b));
        prop_assert!((d_before - d_after).abs() < 1e-6 * d_before.max(1.0));
    }

    #[test]
    fn segment_closest_point_is_on_segment(ax in finite(), ay in finite(), bx in finite(), by in finite(), p in vec2()) {
        let s = Segment2::new(Vec2::new(ax, ay), Vec2::new(bx, by));
        let c = s.closest_point(p);
        // The closest point is within the segment's bounding box (inflated).
        let minx = s.a.x.min(s.b.x) - 1e-9;
        let maxx = s.a.x.max(s.b.x) + 1e-9;
        prop_assert!(c.x >= minx && c.x <= maxx);
        // No point on the segment is closer (sampled check).
        for k in 0..=10 {
            let q = s.point_at(k as f64 / 10.0);
            prop_assert!(p.distance(c) <= p.distance(q) + 1e-6);
        }
    }

    #[test]
    fn interval_iou_bounds(a in finite(), la in 0.0f64..100.0, b in finite(), lb in 0.0f64..100.0) {
        let i1 = Interval::new(a, a + la).unwrap();
        let i2 = Interval::new(b, b + lb).unwrap();
        let iou = i1.iou(&i2);
        prop_assert!((0.0..=1.0).contains(&iou));
        prop_assert!((i1.iou(&i2) - i2.iou(&i1)).abs() < 1e-12);
    }

    #[test]
    fn interval_union_ge_parts(a in finite(), la in 0.0f64..100.0, b in finite(), lb in 0.0f64..100.0) {
        let i1 = Interval::new(a, a + la).unwrap();
        let i2 = Interval::new(b, b + lb).unwrap();
        let u = i1.union_length(&i2);
        prop_assert!(u >= i1.length() - 1e-9);
        prop_assert!(u >= i2.length() - 1e-9);
        prop_assert!(u <= i1.length() + i2.length() + 1e-9);
    }

    #[test]
    fn obb_contains_center_and_corners(p in vec2(), h in -4.0f64..4.0, l in 0.1f64..20.0, w in 0.1f64..5.0) {
        let b = Obb2::new(Pose2::new(p, h), l, w);
        prop_assert!(b.contains(p));
        for c in b.corners() {
            prop_assert!(b.contains(c));
        }
    }

    #[test]
    fn obb_intersects_is_symmetric(p in vec2(), q in vec2(), h1 in -4.0f64..4.0, h2 in -4.0f64..4.0) {
        let a = Obb2::new(Pose2::new(p, h1), 4.5, 1.8);
        let b = Obb2::new(Pose2::new(q, h2), 4.5, 1.8);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn circle_crossings_are_sorted_params(cx in finite(), cy in finite(), r in 0.1f64..50.0,
                                          ax in finite(), ay in finite(), bx in finite(), by in finite()) {
        let c = Circle::new(Vec2::new(cx, cy), r);
        let s = Segment2::new(Vec2::new(ax, ay), Vec2::new(bx, by));
        let ts = c.segment_crossings(&s);
        prop_assert!(ts.len() <= 2);
        for t in &ts {
            prop_assert!(*t > 0.0 && *t < 1.0);
        }
        if ts.len() == 2 {
            prop_assert!(ts[0] <= ts[1]);
        }
    }

    #[test]
    fn polyline_point_at_endpoint_behavior(pts in proptest::collection::vec(vec2(), 2..8)) {
        if let Some(p) = Polyline2::new(pts.clone()) {
            prop_assert!((p.point_at(0.0) - pts[0]).norm() < 1e-9);
            prop_assert!((p.point_at(p.length()) - *pts.last().unwrap()).norm() < 1e-6);
            prop_assert!(p.length() >= 0.0);
        }
    }

    #[test]
    fn gaussian_pdf_nonnegative(mx in finite(), my in finite(), sx in 0.01f64..10.0, sy in 0.01f64..10.0,
                                rho in -0.99f64..0.99, p in vec2()) {
        let g = BivariateGaussian::new(Vec2::new(mx, my), sx, sy, rho).unwrap();
        prop_assert!(g.pdf(p) >= 0.0);
        prop_assert!(g.mahalanobis_squared(p) >= -1e-9);
    }

    #[test]
    fn gaussian_mass_bounded(sx in 0.1f64..5.0, d in 0.0f64..20.0, r in 0.0f64..20.0) {
        let g = BivariateGaussian::isotropic(Vec2::ZERO, sx).unwrap();
        let m = g.mass_in_circle(Vec2::new(d, 0.0), r);
        prop_assert!((0.0..=1.0).contains(&m));
    }
}
