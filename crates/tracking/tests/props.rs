//! Property-based tests for tracking, prediction, and crowd clustering.

use erpd_geometry::stats::location_std;
use erpd_geometry::Vec2;
use erpd_tracking::{
    cluster_crowds, predict_ctrv, CrowdParams, Detection, KalmanConfig, KalmanTracker, ObjectId,
    ObjectKind, Pedestrian, PredictorConfig, Tracker, TrackerConfig,
};
use erpd_rand::proptest::prelude::*;
use std::f64::consts::PI;

fn ped_strategy() -> impl Strategy<Value = Pedestrian> {
    (
        0u64..1000,
        -30.0f64..30.0,
        -30.0f64..30.0,
        -PI..PI,
        0.5f64..2.0,
    )
        .prop_map(|(id, x, y, o, v)| Pedestrian {
            id: ObjectId(id),
            position: Vec2::new(x, y),
            orientation: o,
            speed: v,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crowd clustering postconditions hold on arbitrary pedestrian sets:
    /// exact partition, representative membership, and both deviation
    /// constraints.
    #[test]
    fn crowd_clustering_invariants(peds in proptest::collection::vec(ped_strategy(), 0..40)) {
        let params = CrowdParams::default();
        let crowds = cluster_crowds(&peds, &params);
        let mut seen = vec![false; peds.len()];
        for c in &crowds {
            prop_assert!(!c.is_empty());
            prop_assert!(c.members.contains(&c.representative));
            for &m in &c.members {
                prop_assert!(!seen[m], "pedestrian {m} assigned twice");
                seen[m] = true;
            }
            if c.len() >= 2 {
                let pos: Vec<Vec2> = c.members.iter().map(|&i| peds[i].position).collect();
                prop_assert!(location_std(&pos) <= params.beta + 1e-9);
                let os: Vec<f64> = c.members.iter().map(|&i| peds[i].orientation).collect();
                prop_assert!(
                    erpd_geometry::angle::circular_std_deg(&os) <= params.gamma_deg + 1e-6
                );
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some pedestrian missing");
    }

    /// Predicted positions always start at the object's position and never
    /// move faster than the given speed.
    #[test]
    fn prediction_respects_kinematics(
        x in -50.0f64..50.0, y in -50.0f64..50.0,
        speed in 0.0f64..20.0, heading in -PI..PI, omega in -0.5f64..0.5,
    ) {
        let cfg = PredictorConfig::default();
        let t = predict_ctrv(ObjectId(1), ObjectKind::Vehicle, Vec2::new(x, y), speed, heading, omega, 4.5, cfg);
        prop_assert!((t.position_at(0.0) - Vec2::new(x, y)).norm() < 1e-9);
        let mut prev = t.position_at(0.0);
        for k in 1..=20 {
            let tau = cfg.horizon * k as f64 / 20.0;
            let p = t.position_at(tau);
            let step_dist = p.distance(prev);
            let dt = cfg.horizon / 20.0;
            prop_assert!(step_dist <= speed * dt + 1e-6, "moved {step_dist} in {dt}s at speed {speed}");
            prev = p;
        }
    }

    /// Both trackers maintain identity on smooth single-target motion and
    /// report comparable velocities.
    #[test]
    fn trackers_agree_on_linear_motion(vx in -15.0f64..15.0, vy in -15.0f64..15.0) {
        let mut gnn = Tracker::new(TrackerConfig::default());
        let mut kf = KalmanTracker::new(KalmanConfig::default());
        let mut gnn_ids = Vec::new();
        let mut kf_ids = Vec::new();
        for i in 0..15 {
            let t = i as f64 * 0.1;
            let d = [Detection {
                position: Vec2::new(vx * t, vy * t),
                kind: ObjectKind::Vehicle,
            }];
            gnn_ids.push(gnn.update(t, &d)[0].id);
            kf_ids.push(kf.update(t, &d)[0].id);
        }
        prop_assert!(gnn_ids.windows(2).all(|w| w[0] == w[1]));
        prop_assert!(kf_ids.windows(2).all(|w| w[0] == w[1]));
        let v_true = Vec2::new(vx, vy);
        prop_assert!((gnn.tracks()[0].velocity() - v_true).norm() < 1.0);
        prop_assert!((kf.tracks()[0].velocity() - v_true).norm() < 1.5);
    }

    /// Passing intervals are always within the prediction horizon and
    /// properly ordered.
    #[test]
    fn passing_intervals_well_formed(
        speed in 0.5f64..20.0,
        cx in -60.0f64..60.0, cy in -20.0f64..20.0, r in 0.5f64..10.0,
    ) {
        use erpd_geometry::Circle;
        let cfg = PredictorConfig::default();
        let t = predict_ctrv(ObjectId(1), ObjectKind::Vehicle, Vec2::ZERO, speed, 0.0, 0.0, 4.5, cfg);
        for iv in t.passing_intervals(&Circle::new(Vec2::new(cx, cy), r)) {
            prop_assert!(iv.start() >= -1e-9);
            prop_assert!(iv.end() <= cfg.horizon + 1e-9);
            prop_assert!(iv.length() >= 0.0);
        }
    }
}
