//! The location-deviation metric of the paper's Fig. 4(c).
//!
//! Rule 3 predicts only one trajectory per pedestrian crowd, so the quality
//! of a clustering is how tightly the members' *future* positions stay
//! around their representative's: the paper measures "the location
//! deviations of the pedestrians in the same cluster after they move for a
//! period of time".

use crate::{Crowd, Pedestrian};
use erpd_geometry::stats::location_std;
use erpd_geometry::Vec2;

/// Final position of a pedestrian after walking along its orientation for
/// `t` seconds.
pub fn final_position(p: &Pedestrian, t: f64) -> Vec2 {
    p.position + Vec2::from_angle(p.orientation) * (p.speed * t)
}

/// Per-crowd deviation of the members' final positions after `t` seconds,
/// in the same order as `crowds`. Singleton crowds have zero deviation.
pub fn crowd_final_deviations(peds: &[Pedestrian], crowds: &[Crowd], t: f64) -> Vec<f64> {
    crowds
        .iter()
        .map(|c| {
            let finals: Vec<Vec2> = c.members.iter().map(|&i| final_position(&peds[i], t)).collect();
            location_std(&finals)
        })
        .collect()
}

/// Per-pedestrian average final-location deviation: each crowd's deviation
/// weighted by its member count. This is the scalar plotted in Fig. 4(c).
pub fn mean_final_deviation(peds: &[Pedestrian], crowds: &[Crowd], t: f64) -> f64 {
    let total: usize = crowds.iter().map(|c| c.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let devs = crowd_final_deviations(peds, crowds, t);
    crowds
        .iter()
        .zip(devs)
        .map(|(c, d)| d * c.len() as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster_crowds, cluster_dbscan, CrowdParams, ObjectId};
    use std::f64::consts::PI;

    fn ped(i: u64, x: f64, y: f64, o: f64, v: f64) -> Pedestrian {
        Pedestrian {
            id: ObjectId(i),
            position: Vec2::new(x, y),
            orientation: o,
            speed: v,
        }
    }

    #[test]
    fn final_position_kinematics() {
        let p = ped(0, 1.0, 2.0, PI / 2.0, 1.5);
        let f = final_position(&p, 4.0);
        assert!((f - Vec2::new(1.0, 8.0)).norm() < 1e-9);
    }

    #[test]
    fn coherent_crowd_has_small_final_deviation() {
        let peds: Vec<_> = (0..6).map(|i| ped(i, i as f64 * 0.3, 0.0, 0.5, 1.3)).collect();
        let crowds = cluster_crowds(&peds, &CrowdParams::default());
        let dev = mean_final_deviation(&peds, &crowds, 10.0);
        // Identical headings and speeds: the spread never grows beyond the
        // initial ~0.5 m spatial std.
        assert!(dev < 1.0, "deviation = {dev}");
    }

    #[test]
    fn mixed_orientation_cluster_diverges_under_dbscan() {
        let mut peds = Vec::new();
        for i in 0..5 {
            peds.push(ped(i, i as f64 * 0.4, 0.0, 0.0, 1.3));
            peds.push(ped(10 + i, i as f64 * 0.4, 0.6, PI, 1.3));
        }
        let t = 10.0;
        let ours = cluster_crowds(&peds, &CrowdParams::default());
        let base = cluster_dbscan(&peds, 2.5, 1);
        let dev_ours = mean_final_deviation(&peds, &ours, t);
        let dev_base = mean_final_deviation(&peds, &base, t);
        // The paper's Fig 4c shape: ours strictly better.
        assert!(dev_ours < dev_base, "ours {dev_ours} vs dbscan {dev_base}");
        assert!(dev_base > 5.0, "opposite walkers must diverge, got {dev_base}");
    }

    #[test]
    fn singletons_contribute_zero() {
        let peds = vec![ped(0, 0.0, 0.0, 0.0, 1.0), ped(1, 100.0, 0.0, PI, 1.0)];
        let crowds = cluster_crowds(&peds, &CrowdParams::default());
        assert_eq!(mean_final_deviation(&peds, &crowds, 10.0), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean_final_deviation(&[], &[], 5.0), 0.0);
        assert!(crowd_final_deviations(&[], &[], 5.0).is_empty());
    }
}
