//! The three tracking-reduction rules of paper §II-D.
//!
//! Predicting every object is infeasible in real time, so the edge server
//! predicts only:
//!
//! * **Rule 1** — the *leading* vehicle of each lane approaching the
//!   intersection (followers are covered by car-following models),
//! * **Rule 2** — every vehicle inside the intersection boundary (the "red
//!   boundary" along the crosswalks), and
//! * **Rule 3** — one *representative* per pedestrian crowd.
//!
//! This module is deliberately decoupled from the simulator's map: callers
//! describe each object's lane position and boundary membership, which the
//! edge crate derives from its HD map.

use crate::{cluster_crowds, Crowd, CrowdParams, ObjectId, ObjectState, Pedestrian};
use std::collections::BTreeMap;

/// Where a vehicle sits along an approach lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanePosition {
    /// Lane identifier (from the HD map).
    pub lane_id: u32,
    /// Remaining distance to the intersection entry (stop line), metres.
    /// Smaller = closer = further ahead in the queue.
    pub distance_to_stop: f64,
}

/// Everything the rules need to know about one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleInput {
    /// Kinematic state.
    pub state: ObjectState,
    /// Lane position for vehicles on an approach lane (`None` for
    /// pedestrians and vehicles not mapped to a lane).
    pub lane: Option<LanePosition>,
    /// True when the object is inside the intersection boundary (Rule 2).
    pub in_intersection: bool,
}

/// A follower bound to its immediate leader in the same lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FollowerLink {
    /// The follower's identity.
    pub follower: ObjectId,
    /// The vehicle immediately ahead in the same lane.
    pub leader: ObjectId,
    /// The *lane leader* (front of the queue) whose trajectory is predicted;
    /// relevance propagates from this vehicle (paper §III-A2).
    pub lane_leader: ObjectId,
    /// Bumper-to-bumper gap to the immediate leader, metres.
    pub gap: f64,
    /// Follower speed, m/s.
    pub follower_speed: f64,
    /// Immediate leader speed, m/s.
    pub leader_speed: f64,
}

/// Output of applying the three rules to one frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrackingSelection {
    /// Vehicles whose trajectories must be predicted (Rule 1 leaders plus
    /// Rule 2 in-boundary vehicles), deduplicated, in id order.
    pub predicted_vehicles: Vec<ObjectId>,
    /// Car-following links for the filtered-out vehicles.
    pub followers: Vec<FollowerLink>,
    /// Pedestrian crowds; only each crowd's representative is predicted.
    pub crowds: Vec<Crowd>,
    /// Pedestrians in input order (for mapping crowd member indices back to
    /// ids).
    pub pedestrians: Vec<Pedestrian>,
}

impl TrackingSelection {
    /// Ids of the predicted pedestrian representatives, in crowd order.
    pub fn predicted_pedestrians(&self) -> Vec<ObjectId> {
        self.crowds
            .iter()
            .map(|c| self.pedestrians[c.representative].id)
            .collect()
    }

    /// Total number of trajectories that will be predicted.
    pub fn predicted_count(&self) -> usize {
        self.predicted_vehicles.len() + self.crowds.len()
    }
}

/// Applies Rules 1–3 to one frame of tracked objects.
///
/// # Examples
///
/// ```
/// use erpd_tracking::{apply_rules, CrowdParams, LanePosition, ObjectId, ObjectKind,
///                     ObjectState, RuleInput};
/// use erpd_geometry::Vec2;
///
/// // Two vehicles queued in lane 0: only the front one is predicted.
/// let mk = |id: u64, dist: f64| RuleInput {
///     state: ObjectState::new(ObjectId(id), ObjectKind::Vehicle,
///                             Vec2::new(-dist, 0.0), Vec2::new(8.0, 0.0)),
///     lane: Some(LanePosition { lane_id: 0, distance_to_stop: dist }),
///     in_intersection: false,
/// };
/// let sel = apply_rules(&[mk(1, 10.0), mk(2, 25.0)], &CrowdParams::default());
/// assert_eq!(sel.predicted_vehicles, vec![ObjectId(1)]);
/// assert_eq!(sel.followers.len(), 1);
/// ```
pub fn apply_rules(objects: &[RuleInput], crowd_params: &CrowdParams) -> TrackingSelection {
    use crate::ObjectKind;

    let mut predicted: Vec<ObjectId> = Vec::new();
    let mut followers: Vec<FollowerLink> = Vec::new();
    let mut pedestrians: Vec<Pedestrian> = Vec::new();

    // Rule 2: vehicles inside the boundary are always predicted.
    for o in objects {
        if o.state.kind == ObjectKind::Vehicle && o.in_intersection {
            predicted.push(o.state.id);
        }
    }

    // Rule 1: per lane, sort by distance to the stop line; the first is the
    // leader; the rest chain as followers.
    let mut lanes: BTreeMap<u32, Vec<&RuleInput>> = BTreeMap::new();
    for o in objects {
        if o.state.kind != ObjectKind::Vehicle || o.in_intersection {
            continue;
        }
        if let Some(lane) = o.lane {
            lanes.entry(lane.lane_id).or_default().push(o);
        }
    }
    for queue in lanes.values_mut() {
        queue.sort_by(|a, b| {
            let da = a.lane.expect("lane members have lanes").distance_to_stop;
            let db = b.lane.expect("lane members have lanes").distance_to_stop;
            da.partial_cmp(&db).expect("finite distances")
        });
        let lane_leader = queue[0].state.id;
        predicted.push(lane_leader);
        for pair in queue.windows(2) {
            let (ahead, behind) = (pair[0], pair[1]);
            let gap = behind.lane.expect("lane member").distance_to_stop
                - ahead.lane.expect("lane member").distance_to_stop
                - (ahead.state.length + behind.state.length) / 2.0;
            followers.push(FollowerLink {
                follower: behind.state.id,
                leader: ahead.state.id,
                lane_leader,
                gap: gap.max(0.0),
                follower_speed: behind.state.speed(),
                leader_speed: ahead.state.speed(),
            });
        }
    }

    // Rule 3: crowd-cluster the pedestrians.
    for o in objects {
        if o.state.kind == ObjectKind::Pedestrian {
            pedestrians.push(Pedestrian {
                id: o.state.id,
                position: o.state.position,
                orientation: o.state.heading,
                speed: o.state.speed(),
            });
        }
    }
    let crowds = cluster_crowds(&pedestrians, crowd_params);

    predicted.sort();
    predicted.dedup();
    TrackingSelection {
        predicted_vehicles: predicted,
        followers,
        crowds,
        pedestrians,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectKind;
    use erpd_geometry::Vec2;

    fn vehicle(id: u64, lane: Option<(u32, f64)>, in_intersection: bool, speed: f64) -> RuleInput {
        RuleInput {
            state: ObjectState::new(
                ObjectId(id),
                ObjectKind::Vehicle,
                Vec2::new(id as f64 * 10.0, 0.0),
                Vec2::new(speed, 0.0),
            ),
            lane: lane.map(|(lane_id, d)| LanePosition {
                lane_id,
                distance_to_stop: d,
            }),
            in_intersection,
        }
    }

    fn walker(id: u64, x: f64, y: f64, o: f64) -> RuleInput {
        let mut state = ObjectState::new(
            ObjectId(id),
            ObjectKind::Pedestrian,
            Vec2::new(x, y),
            Vec2::from_angle(o) * 1.3,
        );
        state.heading = o;
        RuleInput {
            state,
            lane: None,
            in_intersection: false,
        }
    }

    #[test]
    fn rule1_single_leader_per_lane() {
        let inputs = vec![
            vehicle(1, Some((0, 12.0)), false, 8.0),
            vehicle(2, Some((0, 30.0)), false, 8.0),
            vehicle(3, Some((0, 50.0)), false, 8.0),
            vehicle(4, Some((1, 20.0)), false, 8.0),
        ];
        let sel = apply_rules(&inputs, &CrowdParams::default());
        assert_eq!(sel.predicted_vehicles, vec![ObjectId(1), ObjectId(4)]);
        assert_eq!(sel.followers.len(), 2);
        // Follower chain: 2 follows 1, 3 follows 2; both trace to lane
        // leader 1.
        assert_eq!(sel.followers[0].follower, ObjectId(2));
        assert_eq!(sel.followers[0].leader, ObjectId(1));
        assert_eq!(sel.followers[0].lane_leader, ObjectId(1));
        assert_eq!(sel.followers[1].follower, ObjectId(3));
        assert_eq!(sel.followers[1].leader, ObjectId(2));
        assert_eq!(sel.followers[1].lane_leader, ObjectId(1));
    }

    #[test]
    fn rule1_gap_subtracts_vehicle_halves() {
        let inputs = vec![
            vehicle(1, Some((0, 10.0)), false, 8.0),
            vehicle(2, Some((0, 20.0)), false, 8.0),
        ];
        let sel = apply_rules(&inputs, &CrowdParams::default());
        // 10 m centre gap minus 4.5 m (two half-lengths) = 5.5 m.
        assert!((sel.followers[0].gap - 5.5).abs() < 1e-9);
    }

    #[test]
    fn rule2_in_boundary_vehicles_predicted() {
        let inputs = vec![
            vehicle(1, None, true, 5.0),
            vehicle(2, Some((0, 15.0)), false, 8.0),
            vehicle(3, None, false, 8.0), // unmapped, outside boundary: ignored
        ];
        let sel = apply_rules(&inputs, &CrowdParams::default());
        assert_eq!(sel.predicted_vehicles, vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn rule2_takes_priority_over_lane_queueing() {
        // A vehicle inside the boundary that also has a lane mapping is
        // predicted and not treated as a lane member.
        let inputs = vec![
            vehicle(1, Some((0, 0.5)), true, 5.0),
            vehicle(2, Some((0, 12.0)), false, 8.0),
        ];
        let sel = apply_rules(&inputs, &CrowdParams::default());
        // Both predicted: 1 via Rule 2, 2 becomes the lane leader.
        assert_eq!(sel.predicted_vehicles, vec![ObjectId(1), ObjectId(2)]);
        assert!(sel.followers.is_empty());
    }

    #[test]
    fn rule3_crowd_representatives() {
        let mut inputs = vec![vehicle(1, Some((0, 10.0)), false, 8.0)];
        // Crowd of 4 heading east, crowd of 3 heading west, far apart.
        for i in 0..4 {
            inputs.push(walker(10 + i, i as f64 * 0.4, 0.0, 0.0));
        }
        for i in 0..3 {
            inputs.push(walker(20 + i, 40.0 + i as f64 * 0.4, 0.0, std::f64::consts::PI));
        }
        let sel = apply_rules(&inputs, &CrowdParams::default());
        assert_eq!(sel.crowds.len(), 2);
        assert_eq!(sel.predicted_pedestrians().len(), 2);
        // 1 vehicle + 2 representatives.
        assert_eq!(sel.predicted_count(), 3);
    }

    #[test]
    fn paper_scale_reduction() {
        // Paper §II-D: 30 vehicles and 20 pedestrians reduce to 7 vehicles
        // and 4 pedestrian representatives. Reproduce the shape: 4 lanes
        // with queues, 3 vehicles in the box, 4 tight crowds.
        let mut inputs = Vec::new();
        let mut id = 0u64;
        for lane in 0..4u32 {
            for k in 0..5 {
                id += 1;
                inputs.push(vehicle(id, Some((lane, 10.0 + 8.0 * k as f64)), false, 8.0));
            }
        }
        for _ in 0..3 {
            id += 1;
            inputs.push(vehicle(id, None, true, 5.0));
        }
        for crowd in 0..4 {
            for k in 0..5 {
                id += 1;
                inputs.push(walker(
                    id,
                    crowd as f64 * 30.0 + k as f64 * 0.4,
                    0.0,
                    crowd as f64 * 0.7,
                ));
            }
        }
        let sel = apply_rules(&inputs, &CrowdParams::default());
        // 4 leaders + 3 in-box = 7 vehicles; 4 crowds.
        assert_eq!(sel.predicted_vehicles.len(), 7);
        assert_eq!(sel.crowds.len(), 4);
        assert_eq!(sel.followers.len(), 16);
        // 23 objects tracked instead of 20 + 23 = 43... the paper's point:
        assert!(sel.predicted_count() < inputs.len() / 2);
    }

    #[test]
    fn empty_input() {
        let sel = apply_rules(&[], &CrowdParams::default());
        assert!(sel.predicted_vehicles.is_empty());
        assert!(sel.followers.is_empty());
        assert!(sel.crowds.is_empty());
        assert_eq!(sel.predicted_count(), 0);
    }

    #[test]
    fn negative_gap_clamped_to_zero() {
        let inputs = vec![
            vehicle(1, Some((0, 10.0)), false, 8.0),
            vehicle(2, Some((0, 13.0)), false, 8.0), // 3 m centre gap < 4.5 m lengths
        ];
        let sel = apply_rules(&inputs, &CrowdParams::default());
        assert_eq!(sel.followers[0].gap, 0.0);
    }
}
