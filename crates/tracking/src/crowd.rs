//! Pedestrian crowd clustering (paper §II-D, Rule 3).
//!
//! The paper's algorithm: cluster pedestrians *by location only*, then for
//! each cluster compare the standard deviations of member locations and
//! orientations against thresholds β (location) and γ (orientation); members
//! whose deviation exceeds a threshold are removed into a new cluster, and
//! the process repeats until every cluster satisfies both constraints. Only
//! one *representative* per cluster is then tracked and predicted.
//!
//! The DBSCAN baseline of Fig. 4 is [`cluster_dbscan`].

use crate::ObjectId;
use erpd_geometry::angle::{angle_dist, circular_mean, circular_std_deg, deg_to_rad};
use erpd_geometry::stats::location_std;
use erpd_geometry::Vec2;
use erpd_pointcloud::{dbscan, DbscanParams};

/// A pedestrian observation fed to the clustering algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pedestrian {
    /// Identity (carried through to the output crowds).
    pub id: ObjectId,
    /// Planar position, world frame.
    pub position: Vec2,
    /// Moving direction, radians.
    pub orientation: f64,
    /// Walking speed, m/s.
    pub speed: f64,
}

/// Parameters of the crowd-clustering algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdParams {
    /// Radius of the initial location-only clustering, metres.
    pub location_eps: f64,
    /// Location standard-deviation threshold β, metres (paper: 2).
    pub beta: f64,
    /// Orientation standard-deviation threshold γ, degrees (paper: 5).
    pub gamma_deg: f64,
}

impl Default for CrowdParams {
    /// The thresholds the paper evaluates with: β = 2 m, γ = 5°.
    fn default() -> Self {
        CrowdParams {
            location_eps: 2.5,
            beta: 2.0,
            gamma_deg: 5.0,
        }
    }
}

/// A cluster of pedestrians with a designated representative.
#[derive(Debug, Clone, PartialEq)]
pub struct Crowd {
    /// Indices into the input slice.
    pub members: Vec<usize>,
    /// Index (into the input slice) of the representative: the member
    /// closest to the crowd centroid.
    pub representative: usize,
    /// Centroid of member positions.
    pub centroid: Vec2,
    /// Circular mean of member orientations, radians.
    pub mean_orientation: f64,
}

impl Crowd {
    fn from_members(members: Vec<usize>, peds: &[Pedestrian]) -> Crowd {
        debug_assert!(!members.is_empty());
        let centroid = Vec2::centroid(members.iter().map(|&i| peds[i].position))
            .expect("non-empty crowd");
        let mean_orientation =
            circular_mean(members.iter().map(|&i| peds[i].orientation)).unwrap_or_else(|| {
                // Degenerate (opposite directions): fall back to the first
                // member's orientation; the cluster will be split anyway.
                peds[members[0]].orientation
            });
        let representative = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                peds[a]
                    .position
                    .distance_squared(centroid)
                    .partial_cmp(&peds[b].position.distance_squared(centroid))
                    .expect("finite distances")
            })
            .expect("non-empty crowd");
        Crowd {
            members,
            representative,
            centroid,
            mean_orientation,
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the crowd has no members (never produced by the algorithms).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

fn satisfies(members: &[usize], peds: &[Pedestrian], params: &CrowdParams) -> bool {
    if members.len() < 2 {
        return true;
    }
    let positions: Vec<Vec2> = members.iter().map(|&i| peds[i].position).collect();
    if location_std(&positions) > params.beta {
        return false;
    }
    let orientations: Vec<f64> = members.iter().map(|&i| peds[i].orientation).collect();
    circular_std_deg(&orientations) <= params.gamma_deg
}

/// Splits a violating cluster: members whose individual deviation exceeds a
/// threshold are evicted into a new cluster; when eviction degenerates
/// (all or none evicted) the cluster is bisected along its dominant
/// deviation axis so progress is guaranteed.
fn split(members: Vec<usize>, peds: &[Pedestrian], params: &CrowdParams) -> (Vec<usize>, Vec<usize>) {
    let crowd = Crowd::from_members(members.clone(), peds);
    let gamma_rad = deg_to_rad(params.gamma_deg);
    let (mut keep, mut evicted) = (Vec::new(), Vec::new());
    for &i in &members {
        let loc_dev = peds[i].position.distance(crowd.centroid);
        let ori_dev = angle_dist(peds[i].orientation, crowd.mean_orientation);
        if loc_dev > params.beta || ori_dev > gamma_rad {
            evicted.push(i);
        } else {
            keep.push(i);
        }
    }
    if !keep.is_empty() && !evicted.is_empty() {
        return (keep, evicted);
    }
    // Degenerate eviction: bisect. Prefer the orientation axis when the
    // orientation constraint is the one violated.
    let orientations: Vec<f64> = members.iter().map(|&i| peds[i].orientation).collect();
    if circular_std_deg(&orientations) > params.gamma_deg {
        let mean = crowd.mean_orientation;
        let (mut a, mut b): (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for &i in &members {
            if erpd_geometry::angle::angle_diff(peds[i].orientation, mean) >= 0.0 {
                a.push(i);
            } else {
                b.push(i);
            }
        }
        if !a.is_empty() && !b.is_empty() {
            return (a, b);
        }
    }
    // Spatial bisection: split at the median of the projection onto the
    // direction of maximum spread (centroid -> farthest member).
    let far = members
        .iter()
        .copied()
        .max_by(|&x, &y| {
            peds[x]
                .position
                .distance_squared(crowd.centroid)
                .partial_cmp(&peds[y].position.distance_squared(crowd.centroid))
                .expect("finite distances")
        })
        .expect("non-empty");
    let axis = (peds[far].position - crowd.centroid)
        .try_normalize()
        .unwrap_or(Vec2::UNIT_X);
    let mut proj: Vec<(f64, usize)> = members
        .iter()
        .map(|&i| ((peds[i].position - crowd.centroid).dot(axis), i))
        .collect();
    proj.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite projections"));
    let half = (proj.len() / 2).max(1);
    let a: Vec<usize> = proj[..half].iter().map(|&(_, i)| i).collect();
    let b: Vec<usize> = proj[half..].iter().map(|&(_, i)| i).collect();
    (a, b)
}

/// The paper's crowd-clustering algorithm.
///
/// Every input pedestrian appears in exactly one output crowd, and every
/// output crowd satisfies both the β (location) and γ (orientation)
/// deviation constraints.
///
/// # Examples
///
/// ```
/// use erpd_tracking::{cluster_crowds, CrowdParams, ObjectId, Pedestrian};
/// use erpd_geometry::Vec2;
///
/// // Two pedestrians walking together, one walking the opposite way.
/// let peds = vec![
///     Pedestrian { id: ObjectId(0), position: Vec2::new(0.0, 0.0), orientation: 0.0, speed: 1.2 },
///     Pedestrian { id: ObjectId(1), position: Vec2::new(0.5, 0.0), orientation: 0.02, speed: 1.2 },
///     Pedestrian { id: ObjectId(2), position: Vec2::new(1.0, 0.0), orientation: 3.14, speed: 1.2 },
/// ];
/// let crowds = cluster_crowds(&peds, &CrowdParams::default());
/// assert_eq!(crowds.len(), 2);
/// ```
pub fn cluster_crowds(peds: &[Pedestrian], params: &CrowdParams) -> Vec<Crowd> {
    // Step 1: cluster solely on location. min_points = 1 so nobody is noise.
    let positions: Vec<Vec2> = peds.iter().map(|p| p.position).collect();
    let initial = dbscan(&positions, DbscanParams::new(params.location_eps, 1));

    let mut queue: Vec<Vec<usize>> = initial.clusters();
    let mut out = Vec::new();
    // Step 2: iteratively enforce the deviation constraints.
    while let Some(members) = queue.pop() {
        if members.is_empty() {
            continue;
        }
        if satisfies(&members, peds, params) {
            out.push(Crowd::from_members(members, peds));
        } else {
            let (a, b) = split(members, peds, params);
            queue.push(a);
            queue.push(b);
        }
    }
    // Deterministic output order: by smallest member index.
    out.sort_by_key(|c| *c.members.iter().min().expect("non-empty crowd"));
    out
}

/// The DBSCAN baseline of Fig. 4: clusters on location only, with noise
/// points becoming singleton crowds so every pedestrian is covered.
pub fn cluster_dbscan(peds: &[Pedestrian], eps: f64, min_points: usize) -> Vec<Crowd> {
    let positions: Vec<Vec2> = peds.iter().map(|p| p.position).collect();
    let result = dbscan(&positions, DbscanParams::new(eps, min_points));
    let mut crowds: Vec<Crowd> = result
        .clusters()
        .into_iter()
        .map(|members| Crowd::from_members(members, peds))
        .collect();
    for i in result.noise() {
        crowds.push(Crowd::from_members(vec![i], peds));
    }
    crowds.sort_by_key(|c| *c.members.iter().min().expect("non-empty crowd"));
    crowds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn ped(i: u64, x: f64, y: f64, o: f64) -> Pedestrian {
        Pedestrian {
            id: ObjectId(i),
            position: Vec2::new(x, y),
            orientation: o,
            speed: 1.3,
        }
    }

    fn check_invariants(peds: &[Pedestrian], crowds: &[Crowd], params: &CrowdParams) {
        // Partition: every pedestrian in exactly one crowd.
        let mut seen = vec![false; peds.len()];
        for c in crowds {
            for &m in &c.members {
                assert!(!seen[m], "pedestrian {m} in two crowds");
                seen[m] = true;
            }
            assert!(c.members.contains(&c.representative));
        }
        assert!(seen.iter().all(|&s| s), "pedestrian missing from crowds");
        // Constraints hold.
        for c in crowds {
            assert!(satisfies(&c.members, peds, params), "constraint violated: {c:?}");
        }
    }

    #[test]
    fn tight_group_is_one_crowd() {
        let peds: Vec<_> = (0..8)
            .map(|i| ped(i, (i % 4) as f64 * 0.5, (i / 4) as f64 * 0.5, 0.01 * i as f64))
            .collect();
        let params = CrowdParams::default();
        let crowds = cluster_crowds(&peds, &params);
        assert_eq!(crowds.len(), 1);
        check_invariants(&peds, &crowds, &params);
    }

    #[test]
    fn opposite_orientations_split() {
        // Co-located but walking in opposite directions (the paper's Fig. 4a
        // failure case for DBSCAN).
        let mut peds = Vec::new();
        for i in 0..5 {
            peds.push(ped(i, i as f64 * 0.4, 0.0, 0.0));
            peds.push(ped(10 + i, i as f64 * 0.4, 0.5, PI));
        }
        let params = CrowdParams::default();
        let crowds = cluster_crowds(&peds, &params);
        assert_eq!(crowds.len(), 2);
        check_invariants(&peds, &crowds, &params);
        // DBSCAN on location alone merges them into one cluster.
        let base = cluster_dbscan(&peds, 2.5, 1);
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn spatially_spread_group_splits_on_beta() {
        // A long line of pedestrians, all heading the same way: orientation
        // fine, location std too large.
        let peds: Vec<_> = (0..12).map(|i| ped(i, i as f64 * 1.2, 0.0, FRAC_PI_2)).collect();
        let params = CrowdParams {
            location_eps: 2.0,
            beta: 1.5,
            gamma_deg: 5.0,
        };
        let crowds = cluster_crowds(&peds, &params);
        assert!(crowds.len() >= 2);
        check_invariants(&peds, &crowds, &params);
    }

    #[test]
    fn far_groups_stay_separate() {
        let mut peds = Vec::new();
        for i in 0..4 {
            peds.push(ped(i, i as f64 * 0.3, 0.0, 0.0));
            peds.push(ped(10 + i, 100.0 + i as f64 * 0.3, 0.0, 0.0));
        }
        let params = CrowdParams::default();
        let crowds = cluster_crowds(&peds, &params);
        assert_eq!(crowds.len(), 2);
        check_invariants(&peds, &crowds, &params);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let params = CrowdParams::default();
        assert!(cluster_crowds(&[], &params).is_empty());
        let one = [ped(0, 1.0, 1.0, 0.3)];
        let crowds = cluster_crowds(&one, &params);
        assert_eq!(crowds.len(), 1);
        assert_eq!(crowds[0].representative, 0);
    }

    #[test]
    fn symmetric_orientation_spread_terminates() {
        // Every member deviates from the mean by the same angle > gamma:
        // naive eviction would evict everyone forever.
        let peds: Vec<_> = (0..6)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                ped(i, (i / 2) as f64 * 0.3, 0.0, sign * 0.3)
            })
            .collect();
        let params = CrowdParams::default();
        let crowds = cluster_crowds(&peds, &params);
        check_invariants(&peds, &crowds, &params);
        assert!(crowds.len() >= 2);
    }

    #[test]
    fn representative_is_closest_to_centroid() {
        let peds = vec![
            ped(0, 0.0, 0.0, 0.0),
            ped(1, 1.0, 0.0, 0.0),
            ped(2, 2.0, 0.0, 0.0),
        ];
        let crowds = cluster_crowds(&peds, &CrowdParams::default());
        assert_eq!(crowds.len(), 1);
        assert_eq!(crowds[0].representative, 1); // the middle pedestrian
    }

    #[test]
    fn dbscan_baseline_covers_everyone() {
        let peds: Vec<_> = (0..10).map(|i| ped(i, i as f64 * 3.0, 0.0, 0.0)).collect();
        let crowds = cluster_dbscan(&peds, 1.0, 2);
        let total: usize = crowds.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn deterministic_output() {
        let peds: Vec<_> = (0..20)
            .map(|i| ped(i, (i % 5) as f64 * 0.7, (i / 5) as f64 * 0.7, (i % 3) as f64 * 0.2))
            .collect();
        let params = CrowdParams::default();
        let a = cluster_crowds(&peds, &params);
        let b = cluster_crowds(&peds, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn wraparound_orientations_cluster_together() {
        // Orientations hugging the ±π discontinuity are a tight group.
        let peds: Vec<_> = (0..6)
            .map(|i| {
                let o = if i % 2 == 0 { PI - 0.01 } else { -(PI - 0.01) };
                ped(i, i as f64 * 0.3, 0.0, o)
            })
            .collect();
        let crowds = cluster_crowds(&peds, &CrowdParams::default());
        assert_eq!(crowds.len(), 1);
    }
}
