//! Multi-object tracking over the merged traffic map (paper's *Object
//! Tracking* module).
//!
//! The edge server receives per-frame object detections (cluster centroids
//! from the merged map) and must associate them over time to estimate
//! velocities for trajectory prediction. A gated nearest-neighbour
//! association with constant-velocity gating is sufficient at the densities
//! the paper evaluates (tens of objects per intersection).

use crate::{ObjectId, ObjectKind};
use erpd_geometry::Vec2;
use std::collections::VecDeque;

/// One detection fed to the tracker (no identity attached).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Planar position, world frame.
    pub position: Vec2,
    /// Classified kind.
    pub kind: ObjectKind,
}

/// One detection after association: the tracker-assigned identity paired
/// with the observation it matched. Returned by [`Tracker::update`] and
/// [`crate::KalmanTracker::update`] in input order, so downstream stages
/// can zip identities back onto whatever produced the detections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedDetection {
    /// Tracker-assigned id, stable across frames.
    pub id: ObjectId,
    /// The observation, as fed in.
    pub detection: Detection,
}

/// A live track maintained by the tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    id: ObjectId,
    kind: ObjectKind,
    history: VecDeque<(f64, Vec2)>,
    misses: usize,
}

impl Track {
    /// The track's identity.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The tracked object's kind.
    #[inline]
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// Most recent position.
    pub fn position(&self) -> Vec2 {
        self.history.back().expect("track has >= 1 observation").1
    }

    /// Timestamp of the most recent observation.
    pub fn last_seen(&self) -> f64 {
        self.history.back().expect("track has >= 1 observation").0
    }

    /// Number of consecutive frames without an observation.
    #[inline]
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of stored observations.
    #[inline]
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// The stored observation history, oldest first.
    pub fn history(&self) -> impl Iterator<Item = (f64, Vec2)> + '_ {
        self.history.iter().copied()
    }

    /// Rebuilds a track from a snapshotted history (oldest first), e.g.
    /// one carried by a cross-edge handover message. Returns `None` for an
    /// empty history — a track always has at least one observation.
    pub fn from_history(
        id: ObjectId,
        kind: ObjectKind,
        misses: usize,
        history: &[(f64, Vec2)],
    ) -> Option<Self> {
        if history.is_empty() {
            return None;
        }
        Some(Track {
            id,
            kind,
            history: history.iter().copied().collect(),
            misses,
        })
    }

    /// Velocity estimate from the stored history (least-squares slope over
    /// the window), or zero for a single observation.
    pub fn velocity(&self) -> Vec2 {
        let n = self.history.len();
        if n < 2 {
            return Vec2::ZERO;
        }
        // Least-squares fit of position against time.
        let t_mean = self.history.iter().map(|(t, _)| *t).sum::<f64>() / n as f64;
        let p_mean = self.history.iter().map(|(_, p)| *p).sum::<Vec2>() / n as f64;
        let mut num = Vec2::ZERO;
        let mut den = 0.0;
        for (t, p) in &self.history {
            let dt = t - t_mean;
            num += (*p - p_mean) * dt;
            den += dt * dt;
        }
        if den <= f64::EPSILON {
            Vec2::ZERO
        } else {
            num / den
        }
    }

    /// Position coasted to `now` by the constant-velocity model: the best
    /// estimate for a track whose recent observations are missing (e.g. the
    /// observing vehicle's upload was lost). Equals [`Track::position`] when
    /// `now` is not later than the last observation.
    pub fn coasted_position(&self, now: f64) -> Vec2 {
        let age = now - self.last_seen();
        if age <= 0.0 {
            return self.position();
        }
        self.position() + self.velocity() * age
    }

    /// Heading estimate: direction of the velocity, or `None` when nearly
    /// stationary.
    pub fn heading(&self) -> Option<f64> {
        let v = self.velocity();
        (v.norm() > 0.05).then(|| v.angle())
    }

    /// Turn-rate estimate (rad/s) from the change of direction over the
    /// history window; zero when motion is too short or too slow.
    pub fn turn_rate(&self) -> f64 {
        let n = self.history.len();
        if n < 3 {
            return 0.0;
        }
        let (t0, p0) = self.history[0];
        let (_, pm) = self.history[n / 2];
        let (t1, p1) = self.history[n - 1];
        let v_early = pm - p0;
        let v_late = p1 - pm;
        if v_early.norm() < 0.05 || v_late.norm() < 0.05 || t1 - t0 <= f64::EPSILON {
            return 0.0;
        }
        let dtheta = erpd_geometry::angle::angle_diff(v_late.angle(), v_early.angle());
        dtheta / ((t1 - t0) / 2.0)
    }
}

/// Configuration for [`Tracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Maximum association distance per second of elapsed time plus a fixed
    /// slack, metres: gate = `gate_base + gate_speed * dt`.
    pub gate_base: f64,
    /// Speed component of the gate, m/s (should exceed the fastest object).
    pub gate_speed: f64,
    /// Drop a track after this many consecutive missed frames.
    pub max_misses: usize,
    /// Observations kept per track for velocity estimation.
    pub history_len: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            gate_base: 1.0,
            gate_speed: 20.0, // 72 km/h
            max_misses: 5,
            history_len: 8,
        }
    }
}

/// Gated nearest-neighbour multi-object tracker.
///
/// # Examples
///
/// ```
/// use erpd_tracking::{Detection, ObjectKind, Tracker, TrackerConfig};
/// use erpd_geometry::Vec2;
///
/// let mut tracker = Tracker::new(TrackerConfig::default());
/// for frame in 0..5 {
///     let t = frame as f64 * 0.1;
///     tracker.update(t, &[Detection {
///         position: Vec2::new(10.0 * t, 0.0), // 10 m/s along +x
///         kind: ObjectKind::Vehicle,
///     }]);
/// }
/// let track = &tracker.tracks()[0];
/// assert!((track.velocity().x - 10.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
    last_time: Option<f64>,
}

impl Tracker {
    /// Creates a tracker.
    pub fn new(config: TrackerConfig) -> Self {
        Tracker::with_id_base(config, 0)
    }

    /// Creates a tracker whose fresh track ids start at `base`. In a
    /// multi-edge deployment each edge gets a disjoint id namespace (e.g.
    /// `edge_index << 32`), so a track handed over from another edge can
    /// never collide with a locally created one. `base == 0` is exactly
    /// [`Tracker::new`].
    pub fn with_id_base(config: TrackerConfig, base: u64) -> Self {
        Tracker {
            config,
            tracks: Vec::new(),
            next_id: base,
            last_time: None,
        }
    }

    /// Live tracks, in creation order.
    #[inline]
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Looks up a track by id.
    pub fn track(&self, id: ObjectId) -> Option<&Track> {
        self.tracks.iter().find(|t| t.id == id)
    }

    /// Adopts a track handed over from another tracker, keeping its
    /// identity: an existing track with the same id is replaced (the
    /// incoming snapshot is fresher), otherwise the track is appended in
    /// creation order. The caller is responsible for id-namespace
    /// disjointness (see [`Tracker::with_id_base`]).
    pub fn adopt(&mut self, track: Track) {
        match self.tracks.iter_mut().find(|t| t.id == track.id) {
            Some(existing) => *existing = track,
            None => self.tracks.push(track),
        }
    }

    /// Removes and returns the track with the given id, if present.
    pub fn remove(&mut self, id: ObjectId) -> Option<Track> {
        let at = self.tracks.iter().position(|t| t.id == id)?;
        Some(self.tracks.remove(at))
    }

    /// Ingests one frame of detections at time `now` (seconds, must be
    /// non-decreasing across calls). Returns each detection paired with
    /// its assigned identity, in input order.
    pub fn update(&mut self, now: f64, detections: &[Detection]) -> Vec<TrackedDetection> {
        let dt = self.last_time.map(|t| (now - t).max(0.0)).unwrap_or(0.0);
        self.last_time = Some(now);
        let gate = self.config.gate_base + self.config.gate_speed * dt;

        // Greedy globally-nearest association: collect all (dist, track, det)
        // pairs under the gate, sort, and assign each side at most once.
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for (ti, track) in self.tracks.iter().enumerate() {
            let predicted = track.position() + track.velocity() * dt;
            for (di, det) in detections.iter().enumerate() {
                if det.kind != track.kind {
                    continue;
                }
                let d = predicted.distance(det.position);
                if d <= gate {
                    pairs.push((d, ti, di));
                }
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));

        let mut track_used = vec![false; self.tracks.len()];
        let mut det_assigned: Vec<Option<usize>> = vec![None; detections.len()];
        for (_, ti, di) in pairs {
            if !track_used[ti] && det_assigned[di].is_none() {
                track_used[ti] = true;
                det_assigned[di] = Some(ti);
            }
        }

        let mut out = Vec::with_capacity(detections.len());
        for (di, det) in detections.iter().enumerate() {
            match det_assigned[di] {
                Some(ti) => {
                    let track = &mut self.tracks[ti];
                    track.history.push_back((now, det.position));
                    while track.history.len() > self.config.history_len {
                        track.history.pop_front();
                    }
                    track.misses = 0;
                    out.push(TrackedDetection {
                        id: track.id,
                        detection: *det,
                    });
                }
                None => {
                    let id = ObjectId(self.next_id);
                    self.next_id += 1;
                    let mut history = VecDeque::with_capacity(self.config.history_len);
                    history.push_back((now, det.position));
                    self.tracks.push(Track {
                        id,
                        kind: det.kind,
                        history,
                        misses: 0,
                    });
                    track_used.push(true);
                    out.push(TrackedDetection {
                        id,
                        detection: *det,
                    });
                }
            }
        }

        // Age unmatched tracks and drop stale ones.
        for (ti, used) in track_used.iter().enumerate().take(self.tracks.len()) {
            if !used {
                self.tracks[ti].misses += 1;
            }
        }
        let max_misses = self.config.max_misses;
        self.tracks.retain(|t| t.misses <= max_misses);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: f64, y: f64) -> Detection {
        Detection {
            position: Vec2::new(x, y),
            kind: ObjectKind::Vehicle,
        }
    }

    #[test]
    fn single_object_keeps_identity() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut ids = Vec::new();
        for i in 0..10 {
            let r = tr.update(i as f64 * 0.1, &[det(i as f64, 0.0)]);
            ids.push(r[0].id);
        }
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(tr.tracks().len(), 1);
    }

    #[test]
    fn velocity_estimate_converges() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for i in 0..8 {
            let t = i as f64 * 0.1;
            tr.update(t, &[det(5.0 * t, -3.0 * t)]);
        }
        let v = tr.tracks()[0].velocity();
        assert!((v.x - 5.0).abs() < 0.1, "vx = {}", v.x);
        assert!((v.y + 3.0).abs() < 0.1, "vy = {}", v.y);
    }

    #[test]
    fn coasting_extrapolates_along_velocity() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for i in 0..8 {
            let t = i as f64 * 0.1;
            tr.update(t, &[det(5.0 * t, 0.0)]);
        }
        let track = &tr.tracks()[0];
        let last = track.last_seen();
        // Not later than the last observation: exactly the last position.
        assert_eq!(track.coasted_position(last), track.position());
        // Half a second later: advanced by roughly v * 0.5.
        let coasted = track.coasted_position(last + 0.5);
        let expect = track.position() + track.velocity() * 0.5;
        assert!((coasted - expect).norm() < 1e-9);
        assert!((coasted.x - (track.position().x + 2.5)).abs() < 0.1);
    }

    #[test]
    fn two_objects_do_not_swap() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut id_a = None;
        let mut id_b = None;
        for i in 0..10 {
            let t = i as f64 * 0.1;
            // A moves east along y=0; B moves west along y=10.
            let r = tr.update(t, &[det(10.0 * t, 0.0), det(50.0 - 10.0 * t, 10.0)]);
            if i == 0 {
                id_a = Some(r[0].id);
                id_b = Some(r[1].id);
            } else {
                assert_eq!(r[0].id, id_a.unwrap());
                assert_eq!(r[1].id, id_b.unwrap());
            }
        }
    }

    #[test]
    fn kinds_never_associate() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(0.0, &[det(0.0, 0.0)]);
        // A pedestrian detection at the same spot must open a new track.
        let r = tr.update(0.1, &[Detection {
            position: Vec2::new(0.0, 0.0),
            kind: ObjectKind::Pedestrian,
        }]);
        assert_eq!(tr.tracks().len(), 2);
        assert_eq!(tr.track(r[0].id).unwrap().kind(), ObjectKind::Pedestrian);
    }

    #[test]
    fn stale_tracks_are_dropped() {
        let cfg = TrackerConfig {
            max_misses: 2,
            ..TrackerConfig::default()
        };
        let mut tr = Tracker::new(cfg);
        tr.update(0.0, &[det(0.0, 0.0)]);
        for i in 1..=3 {
            tr.update(i as f64 * 0.1, &[]);
        }
        assert!(tr.tracks().is_empty());
    }

    #[test]
    fn occlusion_gap_survives_within_misses() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let id0 = tr.update(0.0, &[det(0.0, 0.0)])[0].id;
        tr.update(0.1, &[det(1.0, 0.0)]);
        // Two missed frames.
        tr.update(0.2, &[]);
        tr.update(0.3, &[]);
        // Reappears where constant velocity predicts (x ~ 4).
        let id1 = tr.update(0.4, &[det(4.0, 0.0)])[0].id;
        assert_eq!(id0, id1);
    }

    #[test]
    fn far_detection_opens_new_track() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let a = tr.update(0.0, &[det(0.0, 0.0)])[0].id;
        let b = tr.update(0.1, &[det(500.0, 0.0)])[0].id;
        assert_ne!(a, b);
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn turn_rate_detected_on_curved_path() {
        let mut tr = Tracker::new(TrackerConfig::default());
        // Quarter circle of radius 20 m at ~10 m/s: omega = v/r = 0.5 rad/s.
        let omega: f64 = 0.5;
        let r = 20.0;
        for i in 0..8 {
            let t = i as f64 * 0.1;
            let a = omega * t;
            tr.update(t, &[det(r * a.sin(), r * (1.0 - a.cos()))]);
        }
        let w = tr.tracks()[0].turn_rate();
        assert!((w - omega).abs() < 0.15, "turn rate = {w}");
    }

    #[test]
    fn history_is_bounded() {
        let cfg = TrackerConfig {
            history_len: 4,
            ..TrackerConfig::default()
        };
        let mut tr = Tracker::new(cfg);
        for i in 0..20 {
            tr.update(i as f64 * 0.1, &[det(i as f64, 0.0)]);
        }
        assert_eq!(tr.tracks()[0].observations(), 4);
    }

    #[test]
    fn id_base_namespaces_fresh_tracks() {
        let mut tr = Tracker::with_id_base(TrackerConfig::default(), 3 << 32);
        let a = tr.update(0.0, &[det(0.0, 0.0)])[0].id;
        let b = tr.update(0.0, &[det(0.0, 0.0), det(500.0, 0.0)])[1].id;
        assert_eq!(a, ObjectId(3 << 32));
        assert_eq!(b, ObjectId((3 << 32) + 1));
    }

    #[test]
    fn adopted_track_keeps_identity_across_updates() {
        let mut source = Tracker::new(TrackerConfig::default());
        for i in 0..4 {
            source.update(i as f64 * 0.1, &[det(5.0 * i as f64 * 0.1, 0.0)]);
        }
        let track = source.tracks()[0].clone();
        let id = track.id();
        let history: Vec<_> = track.history().collect();

        let mut dest = Tracker::with_id_base(TrackerConfig::default(), 1 << 32);
        let rebuilt =
            Track::from_history(id, track.kind(), track.misses(), &history).expect("non-empty");
        assert_eq!(rebuilt, track);
        dest.adopt(rebuilt);
        // The next detection continues the adopted track, same id, with the
        // transferred history feeding the velocity estimate.
        let r = dest.update(0.4, &[det(2.0, 0.0)]);
        assert_eq!(r[0].id, id);
        assert_eq!(dest.tracks().len(), 1);
        assert_eq!(dest.tracks()[0].observations(), history.len() + 1);
        // Adopting a fresher snapshot replaces in place, never duplicates.
        dest.adopt(track.clone());
        assert_eq!(dest.tracks().len(), 1);
        assert_eq!(dest.remove(id).unwrap().observations(), history.len());
        assert!(dest.remove(id).is_none());
    }

    #[test]
    fn from_history_rejects_empty() {
        assert!(Track::from_history(ObjectId(1), ObjectKind::Vehicle, 0, &[]).is_none());
    }

    #[test]
    fn single_observation_has_zero_velocity() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(0.0, &[det(3.0, 4.0)]);
        assert_eq!(tr.tracks()[0].velocity(), Vec2::ZERO);
        assert!(tr.tracks()[0].heading().is_none());
        assert_eq!(tr.tracks()[0].turn_rate(), 0.0);
    }
}
