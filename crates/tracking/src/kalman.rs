//! A constant-velocity Kalman filter for object state estimation.
//!
//! The gated nearest-neighbour [`crate::Tracker`] estimates velocity with a
//! least-squares fit over a short window — robust and dependency-free, but
//! noisy right after track birth. This module provides the classical
//! alternative: a 4-state (position + velocity) Kalman filter per track,
//! exposed through [`KalmanTracker`] with the same interface shape as
//! [`crate::Tracker`] so callers can swap estimators.

use crate::{Detection, ObjectId, ObjectKind, TrackedDetection};
use erpd_geometry::Vec2;

/// State estimate of one Kalman track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanState {
    /// Estimated position.
    pub position: Vec2,
    /// Estimated velocity.
    pub velocity: Vec2,
    /// Positional variance (per axis; the filter keeps x and y decoupled).
    pub position_var: f64,
    /// Velocity variance.
    pub velocity_var: f64,
    /// Position–velocity covariance.
    pub cross_var: f64,
}

/// One tracked object with its filter state.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanTrack {
    id: ObjectId,
    kind: ObjectKind,
    state: KalmanState,
    last_update: f64,
    misses: usize,
    updates: usize,
}

impl KalmanTrack {
    /// The track's identity.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The tracked object's kind.
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// Current state estimate.
    pub fn state(&self) -> KalmanState {
        self.state
    }

    /// Estimated position.
    pub fn position(&self) -> Vec2 {
        self.state.position
    }

    /// Estimated velocity.
    pub fn velocity(&self) -> Vec2 {
        self.state.velocity
    }

    /// Number of measurement updates absorbed.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Consecutive frames without a measurement.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Predicts the state `dt` seconds ahead (in place).
    fn predict(&mut self, dt: f64, q_pos: f64, q_vel: f64) {
        let s = &mut self.state;
        s.position += s.velocity * dt;
        // Covariance propagation for [p; v] with F = [[1, dt], [0, 1]]:
        // P' = F P F^T + Q.
        let p = s.position_var;
        let c = s.cross_var;
        let v = s.velocity_var;
        s.position_var = p + 2.0 * dt * c + dt * dt * v + q_pos * dt;
        s.cross_var = c + dt * v;
        s.velocity_var = v + q_vel * dt;
    }

    /// Absorbs a position measurement with variance `r`.
    fn update(&mut self, z: Vec2, r: f64) {
        let s = &mut self.state;
        let innovation = z - s.position;
        let denom = s.position_var + r;
        let k_pos = s.position_var / denom;
        let k_vel = s.cross_var / denom;
        s.position += innovation * k_pos;
        s.velocity += innovation * k_vel;
        // Joseph-free simple covariance update (numerically fine at these
        // scales).
        let p = s.position_var;
        let c = s.cross_var;
        s.position_var = (1.0 - k_pos) * p;
        s.cross_var = (1.0 - k_pos) * c;
        s.velocity_var -= k_vel * c;
        self.updates += 1;
        self.misses = 0;
    }
}

/// Configuration for [`KalmanTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanConfig {
    /// Process noise on position, m²/s.
    pub q_pos: f64,
    /// Process noise on velocity, (m/s)²/s.
    pub q_vel: f64,
    /// Measurement noise (position variance), m².
    pub r_pos: f64,
    /// Initial velocity variance for new tracks, (m/s)².
    pub initial_velocity_var: f64,
    /// Association gate: maximum Mahalanobis-ish normalised distance.
    pub gate: f64,
    /// Drop a track after this many consecutive misses.
    pub max_misses: usize,
}

impl Default for KalmanConfig {
    fn default() -> Self {
        KalmanConfig {
            q_pos: 0.05,
            q_vel: 2.0,
            r_pos: 0.25,
            initial_velocity_var: 100.0,
            gate: 9.0,
            max_misses: 5,
        }
    }
}

/// Constant-velocity Kalman multi-object tracker.
///
/// # Examples
///
/// ```
/// use erpd_tracking::{Detection, KalmanConfig, KalmanTracker, ObjectKind};
/// use erpd_geometry::Vec2;
///
/// let mut tracker = KalmanTracker::new(KalmanConfig::default());
/// for frame in 0..10 {
///     let t = frame as f64 * 0.1;
///     tracker.update(t, &[Detection {
///         position: Vec2::new(12.0 * t, 0.0),
///         kind: ObjectKind::Vehicle,
///     }]);
/// }
/// let v = tracker.tracks()[0].velocity();
/// assert!((v.x - 12.0).abs() < 0.8, "vx = {}", v.x);
/// ```
#[derive(Debug, Clone)]
pub struct KalmanTracker {
    config: KalmanConfig,
    tracks: Vec<KalmanTrack>,
    next_id: u64,
    last_time: Option<f64>,
}

impl KalmanTracker {
    /// Creates a tracker.
    pub fn new(config: KalmanConfig) -> Self {
        KalmanTracker {
            config,
            tracks: Vec::new(),
            next_id: 0,
            last_time: None,
        }
    }

    /// Live tracks.
    pub fn tracks(&self) -> &[KalmanTrack] {
        &self.tracks
    }

    /// Looks up a track by id.
    pub fn track(&self, id: ObjectId) -> Option<&KalmanTrack> {
        self.tracks.iter().find(|t| t.id == id)
    }

    /// Ingests one frame of detections at time `now`; returns each
    /// detection paired with its assigned identity, in input order.
    pub fn update(&mut self, now: f64, detections: &[Detection]) -> Vec<TrackedDetection> {
        let dt = self.last_time.map(|t| (now - t).max(0.0)).unwrap_or(0.0);
        self.last_time = Some(now);

        // Predict all tracks forward.
        for t in &mut self.tracks {
            t.predict(dt, self.config.q_pos, self.config.q_vel);
        }

        // Greedy global-nearest association on the normalised innovation.
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for (ti, track) in self.tracks.iter().enumerate() {
            for (di, det) in detections.iter().enumerate() {
                if det.kind != track.kind {
                    continue;
                }
                let d2 = track.state.position.distance_squared(det.position);
                let norm = d2 / (track.state.position_var + self.config.r_pos);
                if norm <= self.config.gate * self.config.gate {
                    pairs.push((norm, ti, di));
                }
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut track_used = vec![false; self.tracks.len()];
        let mut det_track: Vec<Option<usize>> = vec![None; detections.len()];
        for (_, ti, di) in pairs {
            if !track_used[ti] && det_track[di].is_none() {
                track_used[ti] = true;
                det_track[di] = Some(ti);
            }
        }

        let mut out = Vec::with_capacity(detections.len());
        for (di, det) in detections.iter().enumerate() {
            match det_track[di] {
                Some(ti) => {
                    self.tracks[ti].update(det.position, self.config.r_pos);
                    out.push(TrackedDetection {
                        id: self.tracks[ti].id,
                        detection: *det,
                    });
                }
                None => {
                    let id = ObjectId(self.next_id);
                    self.next_id += 1;
                    self.tracks.push(KalmanTrack {
                        id,
                        kind: det.kind,
                        state: KalmanState {
                            position: det.position,
                            velocity: Vec2::ZERO,
                            position_var: self.config.r_pos,
                            velocity_var: self.config.initial_velocity_var,
                            cross_var: 0.0,
                        },
                        last_update: now,
                        misses: 0,
                        updates: 1,
                    });
                    track_used.push(true);
                    out.push(TrackedDetection {
                        id,
                        detection: *det,
                    });
                }
            }
        }
        for (ti, used) in track_used.iter().enumerate().take(self.tracks.len()) {
            if !used {
                self.tracks[ti].misses += 1;
            } else {
                self.tracks[ti].last_update = now;
            }
        }
        let max_misses = self.config.max_misses;
        self.tracks.retain(|t| t.misses <= max_misses);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: f64, y: f64) -> Detection {
        Detection {
            position: Vec2::new(x, y),
            kind: ObjectKind::Vehicle,
        }
    }

    #[test]
    fn velocity_converges_on_linear_motion() {
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        for i in 0..20 {
            let t = i as f64 * 0.1;
            tr.update(t, &[det(7.0 * t, -2.0 * t)]);
        }
        let v = tr.tracks()[0].velocity();
        assert!((v.x - 7.0).abs() < 0.5, "vx = {}", v.x);
        assert!((v.y + 2.0).abs() < 0.5, "vy = {}", v.y);
        // Uncertainty shrinks with updates.
        assert!(tr.tracks()[0].state().position_var < 0.25);
    }

    #[test]
    fn filters_measurement_noise() {
        // Deterministic "noise": alternating ±0.3 m offsets.
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        for i in 0..30 {
            let t = i as f64 * 0.1;
            let noise = if i % 2 == 0 { 0.3 } else { -0.3 };
            tr.update(t, &[det(5.0 * t + noise, 0.0)]);
        }
        let v = tr.tracks()[0].velocity();
        // The raw finite difference of the noisy signal swings by ±6 m/s;
        // the filter must do far better.
        assert!((v.x - 5.0).abs() < 1.0, "vx = {}", v.x);
    }

    #[test]
    fn identity_maintained_through_misses() {
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        let id0 = tr.update(0.0, &[det(0.0, 0.0)])[0].id;
        tr.update(0.1, &[det(1.0, 0.0)]);
        tr.update(0.2, &[]); // miss
        tr.update(0.3, &[]); // miss
        let id1 = tr.update(0.4, &[det(4.0, 0.0)])[0].id;
        assert_eq!(id0, id1);
        assert_eq!(tr.tracks().len(), 1);
    }

    #[test]
    fn stale_tracks_dropped() {
        let cfg = KalmanConfig {
            max_misses: 2,
            ..KalmanConfig::default()
        };
        let mut tr = KalmanTracker::new(cfg);
        tr.update(0.0, &[det(0.0, 0.0)]);
        for i in 1..=3 {
            tr.update(i as f64 * 0.1, &[]);
        }
        assert!(tr.tracks().is_empty());
    }

    #[test]
    fn two_targets_no_swap() {
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        let mut ids = (None, None);
        for i in 0..15 {
            let t = i as f64 * 0.1;
            let r = tr.update(t, &[det(10.0 * t, 0.0), det(60.0 - 10.0 * t, 8.0)]);
            if i == 0 {
                ids = (Some(r[0].id), Some(r[1].id));
            } else {
                assert_eq!(Some(r[0].id), ids.0);
                assert_eq!(Some(r[1].id), ids.1);
            }
        }
    }

    #[test]
    fn kinds_do_not_associate() {
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        tr.update(0.0, &[det(0.0, 0.0)]);
        tr.update(
            0.1,
            &[Detection {
                position: Vec2::new(0.1, 0.0),
                kind: ObjectKind::Pedestrian,
            }],
        );
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn far_detection_opens_new_track() {
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        let a = tr.update(0.0, &[det(0.0, 0.0)])[0].id;
        let b = tr.update(0.1, &[det(400.0, 0.0)])[0].id;
        assert_ne!(a, b);
    }

    #[test]
    fn covariance_grows_during_prediction() {
        let mut tr = KalmanTracker::new(KalmanConfig::default());
        tr.update(0.0, &[det(0.0, 0.0)]);
        tr.update(0.1, &[det(1.0, 0.0)]);
        let before = tr.tracks()[0].state().position_var;
        tr.update(0.5, &[]); // long coast
        let after = tr.tracks()[0].state().position_var;
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn comparable_to_ls_tracker_on_clean_motion() {
        use crate::{Tracker, TrackerConfig};
        let mut kf = KalmanTracker::new(KalmanConfig::default());
        let mut ls = Tracker::new(TrackerConfig::default());
        for i in 0..12 {
            let t = i as f64 * 0.1;
            let d = [det(9.0 * t, 3.0 * t)];
            kf.update(t, &d);
            ls.update(t, &d);
        }
        let vk = kf.tracks()[0].velocity();
        let vl = ls.tracks()[0].velocity();
        assert!((vk - vl).norm() < 1.0, "kf {vk} vs ls {vl}");
    }
}
