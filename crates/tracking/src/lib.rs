//! Object tracking, trajectory prediction, and tracking-reduction rules for
//! the ERPD stack (paper §II-D).
//!
//! The edge server cannot predict every object in real time, so it:
//!
//! 1. tracks merged-map detections over time with [`Tracker`],
//! 2. applies [`apply_rules`] (Rules 1–3 of the paper) to select which
//!    objects actually need a predicted trajectory — lane leaders,
//!    in-intersection vehicles, and one representative per pedestrian
//!    [`Crowd`], and
//! 3. predicts those trajectories with [`predict_ctrv`] /
//!    [`predict_from_track`], producing [`PredictedTrajectory`] values the
//!    relevance estimator consumes.
//!
//! # Examples
//!
//! ```
//! use erpd_tracking::{cluster_crowds, CrowdParams, ObjectId, Pedestrian};
//! use erpd_geometry::Vec2;
//!
//! let peds: Vec<Pedestrian> = (0..6)
//!     .map(|i| Pedestrian {
//!         id: ObjectId(i),
//!         position: Vec2::new(i as f64 * 0.4, 0.0),
//!         orientation: 0.0,
//!         speed: 1.3,
//!     })
//!     .collect();
//! let crowds = cluster_crowds(&peds, &CrowdParams::default());
//! assert_eq!(crowds.len(), 1); // one coherent crowd, one prediction
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crowd;
mod deviation;
mod kalman;
mod object;
mod predict;
mod rules;
mod track;

pub use crowd::{cluster_crowds, cluster_dbscan, Crowd, CrowdParams, Pedestrian};
pub use deviation::{crowd_final_deviations, final_position, mean_final_deviation};
pub use kalman::{KalmanConfig, KalmanState, KalmanTrack, KalmanTracker};
pub use object::{ObjectId, ObjectKind, ObjectState};
pub use predict::{predict_ctrv, predict_from_track, PredictedTrajectory, PredictorConfig};
pub use rules::{apply_rules, FollowerLink, LanePosition, RuleInput, TrackingSelection};
pub use track::{Detection, Track, TrackedDetection, Tracker, TrackerConfig};
