//! Trajectory prediction (paper's *Trajectory Prediction* module).
//!
//! The paper's relevance math consumes, for each tracked object, a predicted
//! path over a horizon `T` together with per-waypoint bivariate-Gaussian
//! uncertainty (refs [24]–[26] all emit exactly that interface). As
//! documented in DESIGN.md we substitute the deep predictors with a
//! constant-turn-rate-and-velocity (CTRV) kinematic model whose uncertainty
//! grows linearly with the prediction horizon — the downstream relevance
//! computation is agnostic to the predictor family.

use crate::{ObjectId, ObjectKind, Track};
use erpd_geometry::{BivariateGaussian, Circle, Interval, Polyline2, Vec2};

/// Configuration for the predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Maximum prediction horizon `T`, seconds. This is the `T` of the
    /// paper's `R_ttc = 1 - ttc / T` formula.
    pub horizon: f64,
    /// Time step between generated waypoints, seconds.
    pub step: f64,
    /// Positional uncertainty at `t = 0`, metres (1 sigma).
    pub sigma0: f64,
    /// Uncertainty growth rate, metres per second of horizon.
    pub sigma_growth: f64,
    /// Below this speed (m/s) an object is treated as stationary.
    pub stationary_speed: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            horizon: 5.0,
            step: 0.25,
            sigma0: 0.3,
            sigma_growth: 0.4,
            stationary_speed: 0.1,
        }
    }
}

/// A predicted trajectory over the configured horizon.
///
/// # Examples
///
/// ```
/// use erpd_tracking::{predict_ctrv, ObjectId, ObjectKind, PredictorConfig};
/// use erpd_geometry::Vec2;
///
/// let traj = predict_ctrv(
///     ObjectId(1),
///     ObjectKind::Vehicle,
///     Vec2::ZERO,
///     10.0, // m/s
///     0.0,  // heading east
///     0.0,  // no turn
///     4.5,
///     PredictorConfig::default(),
/// );
/// let p = traj.position_at(2.0);
/// assert!((p - Vec2::new(20.0, 0.0)).norm() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedTrajectory {
    /// Identity of the predicted object.
    pub object: ObjectId,
    /// Kind of the predicted object.
    pub kind: ObjectKind,
    /// Footprint length used for collision-area sizing, metres.
    pub length: f64,
    speed: f64,
    start: Vec2,
    path: Option<Polyline2>,
    horizon: f64,
    sigma0: f64,
    sigma_growth: f64,
}

impl PredictedTrajectory {
    /// A trajectory for an object that is not moving.
    pub fn stationary(
        object: ObjectId,
        kind: ObjectKind,
        position: Vec2,
        length: f64,
        config: PredictorConfig,
    ) -> Self {
        PredictedTrajectory {
            object,
            kind,
            length,
            speed: 0.0,
            start: position,
            path: None,
            horizon: config.horizon,
            sigma0: config.sigma0,
            sigma_growth: config.sigma_growth,
        }
    }

    /// A trajectory following an explicit map path at constant speed — the
    /// map-based route-hypothesis predictor used by the edge server for
    /// vehicles whose manoeuvre is constrained by their lane (e.g. an inner
    /// lane allows straight or left; the deep predictors the paper cites
    /// learn this from context, we read it off the HD map).
    ///
    /// `path` must start at the object's current position. Falls back to a
    /// stationary trajectory when `speed` is below the configured threshold
    /// or the path is degenerate.
    pub fn from_path(
        object: ObjectId,
        kind: ObjectKind,
        path: Polyline2,
        speed: f64,
        length: f64,
        config: PredictorConfig,
    ) -> Self {
        if speed < config.stationary_speed {
            let start = path.points()[0];
            return PredictedTrajectory::stationary(object, kind, start, length, config);
        }
        // Trim the path to the reachable horizon.
        let reach = speed * config.horizon;
        let path = path.slice(0.0, reach.min(path.length())).unwrap_or(path);
        PredictedTrajectory {
            object,
            kind,
            length,
            speed,
            start: path.points()[0],
            path: Some(path),
            horizon: config.horizon,
            sigma0: config.sigma0,
            sigma_growth: config.sigma_growth,
        }
    }

    /// Constant speed along the path, m/s (0 for stationary objects).
    #[inline]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Prediction horizon `T`, seconds.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The spatial path, or `None` for stationary objects.
    #[inline]
    pub fn path(&self) -> Option<&Polyline2> {
        self.path.as_ref()
    }

    /// True when the object is predicted not to move.
    #[inline]
    pub fn is_stationary(&self) -> bool {
        self.path.is_none()
    }

    /// Predicted position at time `t` (clamped to `[0, horizon]`).
    pub fn position_at(&self, t: f64) -> Vec2 {
        match &self.path {
            None => self.start,
            Some(path) => path.point_at(self.speed * t.clamp(0.0, self.horizon)),
        }
    }

    /// Per-waypoint uncertainty at time `t`: a bivariate Gaussian centred on
    /// the predicted position whose sigma grows linearly with `t`.
    pub fn gaussian_at(&self, t: f64) -> BivariateGaussian {
        let sigma = self.sigma0 + self.sigma_growth * t.clamp(0.0, self.horizon);
        BivariateGaussian::isotropic(self.position_at(t), sigma.max(1e-3))
            .expect("positive sigma")
    }

    /// Time intervals within `[0, horizon]` during which the object is
    /// inside `circle` — the *passing times* of the paper's relevance
    /// formula.
    pub fn passing_intervals(&self, circle: &Circle) -> Vec<Interval> {
        match &self.path {
            None => {
                if circle.contains(self.start) {
                    vec![Interval::new(0.0, self.horizon).expect("valid horizon")]
                } else {
                    Vec::new()
                }
            }
            Some(path) => {
                let mut out = Vec::new();
                for (s0, s1) in path.circle_intervals(circle) {
                    let t0 = s0 / self.speed;
                    let t1 = s1 / self.speed;
                    if t0 >= self.horizon {
                        continue;
                    }
                    if let Some(iv) = Interval::new(t0.max(0.0), t1.min(self.horizon)) {
                        if iv.length() > 1e-9 {
                            out.push(iv);
                        }
                    }
                }
                out
            }
        }
    }

    /// The first passing interval through `circle`, if any.
    pub fn first_passing_interval(&self, circle: &Circle) -> Option<Interval> {
        self.passing_intervals(circle).into_iter().next()
    }
}

/// Predicts a trajectory with the constant-turn-rate-and-velocity model.
///
/// Produces a stationary trajectory when `speed` is below the configured
/// threshold.
#[allow(clippy::too_many_arguments)]
pub fn predict_ctrv(
    object: ObjectId,
    kind: ObjectKind,
    position: Vec2,
    speed: f64,
    heading: f64,
    turn_rate: f64,
    length: f64,
    config: PredictorConfig,
) -> PredictedTrajectory {
    if speed < config.stationary_speed {
        return PredictedTrajectory::stationary(object, kind, position, length, config);
    }
    let steps = (config.horizon / config.step).ceil() as usize;
    let mut points = Vec::with_capacity(steps + 1);
    let mut pos = position;
    let mut theta = heading;
    points.push(pos);
    for _ in 0..steps {
        pos += Vec2::from_angle(theta) * (speed * config.step);
        theta += turn_rate * config.step;
        points.push(pos);
    }
    let path = Polyline2::new(points).expect("at least two distinct waypoints");
    PredictedTrajectory {
        object,
        kind,
        length,
        speed,
        start: position,
        path: Some(path),
        horizon: config.horizon,
        sigma0: config.sigma0,
        sigma_growth: config.sigma_growth,
    }
}

/// Predicts a trajectory from a live [`Track`], using its velocity and
/// turn-rate estimates.
pub fn predict_from_track(track: &Track, length: f64, config: PredictorConfig) -> PredictedTrajectory {
    let v = track.velocity();
    predict_ctrv(
        track.id(),
        track.kind(),
        track.position(),
        v.norm(),
        if v.norm() > 1e-9 { v.angle() } else { 0.0 },
        track.turn_rate(),
        length,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(speed: f64) -> PredictedTrajectory {
        predict_ctrv(
            ObjectId(1),
            ObjectKind::Vehicle,
            Vec2::ZERO,
            speed,
            0.0,
            0.0,
            4.5,
            PredictorConfig::default(),
        )
    }

    #[test]
    fn straight_line_positions() {
        let t = straight(10.0);
        assert!((t.position_at(0.0) - Vec2::ZERO).norm() < 1e-9);
        assert!((t.position_at(1.0) - Vec2::new(10.0, 0.0)).norm() < 1e-6);
        assert!((t.position_at(5.0) - Vec2::new(50.0, 0.0)).norm() < 1e-6);
        // Clamped beyond horizon.
        assert!((t.position_at(99.0) - Vec2::new(50.0, 0.0)).norm() < 1e-6);
    }

    #[test]
    fn turning_path_curves() {
        let t = predict_ctrv(
            ObjectId(1),
            ObjectKind::Vehicle,
            Vec2::ZERO,
            10.0,
            0.0,
            0.5, // rad/s left turn
            4.5,
            PredictorConfig::default(),
        );
        let p = t.position_at(3.0);
        assert!(p.y > 5.0, "turned path should veer left, got {p}");
        // Path length still equals speed * horizon.
        assert!((t.path().unwrap().length() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn slow_object_is_stationary() {
        let t = straight(0.05);
        assert!(t.is_stationary());
        assert_eq!(t.position_at(3.0), Vec2::ZERO);
        assert_eq!(t.speed(), 0.0);
    }

    #[test]
    fn uncertainty_grows_with_horizon() {
        let t = straight(10.0);
        let g0 = t.gaussian_at(0.0);
        let g5 = t.gaussian_at(5.0);
        assert!(g5.sigma_x() > g0.sigma_x());
        assert!((g0.sigma_x() - 0.3).abs() < 1e-9);
        assert!((g5.sigma_x() - (0.3 + 0.4 * 5.0)).abs() < 1e-9);
    }

    #[test]
    fn passing_interval_through_circle() {
        let t = straight(10.0);
        let c = Circle::new(Vec2::new(20.0, 0.0), 5.0);
        let iv = t.first_passing_interval(&c).unwrap();
        assert!((iv.start() - 1.5).abs() < 1e-6);
        assert!((iv.end() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn passing_interval_clamped_to_horizon() {
        let t = straight(10.0);
        // Circle straddling the end of the 50 m path.
        let c = Circle::new(Vec2::new(50.0, 0.0), 5.0);
        let iv = t.first_passing_interval(&c).unwrap();
        assert!((iv.start() - 4.5).abs() < 1e-6);
        assert!((iv.end() - 5.0).abs() < 1e-6);
        // Circle entirely beyond the horizon.
        let far = Circle::new(Vec2::new(100.0, 0.0), 5.0);
        assert!(t.first_passing_interval(&far).is_none());
    }

    #[test]
    fn stationary_object_in_circle_occupies_whole_horizon() {
        let cfg = PredictorConfig::default();
        let t = PredictedTrajectory::stationary(ObjectId(2), ObjectKind::Pedestrian, Vec2::new(1.0, 1.0), 0.6, cfg);
        let c = Circle::new(Vec2::ZERO, 3.0);
        let iv = t.first_passing_interval(&c).unwrap();
        assert_eq!(iv.start(), 0.0);
        assert_eq!(iv.end(), cfg.horizon);
        let out = Circle::new(Vec2::new(50.0, 0.0), 3.0);
        assert!(t.first_passing_interval(&out).is_none());
    }

    #[test]
    fn path_missing_circle_has_no_interval() {
        let t = straight(10.0);
        let c = Circle::new(Vec2::new(20.0, 30.0), 5.0);
        assert!(t.passing_intervals(&c).is_empty());
    }

    #[test]
    fn predict_from_track_matches_motion() {
        use crate::{Detection, Tracker, TrackerConfig};
        let mut tr = Tracker::new(TrackerConfig::default());
        for i in 0..8 {
            let t = i as f64 * 0.1;
            tr.update(
                t,
                &[Detection {
                    position: Vec2::new(8.0 * t, 0.0),
                    kind: ObjectKind::Vehicle,
                }],
            );
        }
        let traj = predict_from_track(&tr.tracks()[0], 4.5, PredictorConfig::default());
        assert!(!traj.is_stationary());
        assert!((traj.speed() - 8.0).abs() < 0.2);
        // One second ahead of the last observation (x = 5.6) is x ~ 13.6.
        let p = traj.position_at(1.0);
        assert!((p.x - 13.6).abs() < 0.5, "p = {p}");
    }

    #[test]
    fn from_path_follows_the_map_route() {
        let path = Polyline2::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(20.0, 0.0),
            Vec2::new(20.0, 40.0),
        ])
        .unwrap();
        let t = PredictedTrajectory::from_path(
            ObjectId(5),
            ObjectKind::Vehicle,
            path,
            10.0,
            4.5,
            PredictorConfig::default(),
        );
        // After 3 s (30 m) the object is 10 m up the second leg.
        assert!((t.position_at(3.0) - Vec2::new(20.0, 10.0)).norm() < 1e-6);
        // Path trimmed to the 50 m horizon reach.
        assert!((t.path().unwrap().length() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn from_path_slow_object_is_stationary() {
        let path = Polyline2::new(vec![Vec2::new(1.0, 2.0), Vec2::new(5.0, 2.0)]).unwrap();
        let t = PredictedTrajectory::from_path(
            ObjectId(5),
            ObjectKind::Vehicle,
            path,
            0.01,
            4.5,
            PredictorConfig::default(),
        );
        assert!(t.is_stationary());
        assert_eq!(t.position_at(2.0), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn gaussian_centred_on_path() {
        let t = straight(10.0);
        let g = t.gaussian_at(2.0);
        assert!((g.mean() - Vec2::new(20.0, 0.0)).norm() < 1e-6);
    }
}
