//! The object model shared between the tracker, the relevance estimator,
//! and the edge-server pipeline.

use erpd_geometry::{Obb2, Pose2, Vec2};
use std::fmt;

/// Stable identifier for a tracked object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// What kind of road user an object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A motor vehicle (car or truck).
    Vehicle,
    /// A pedestrian.
    Pedestrian,
}

impl ObjectKind {
    /// Default footprint length for the kind, metres. Used for the
    /// collision-area radius when a more precise extent is unavailable.
    pub fn default_length(self) -> f64 {
        match self {
            ObjectKind::Vehicle => 4.5,
            ObjectKind::Pedestrian => 0.6,
        }
    }

    /// Default footprint width for the kind, metres.
    pub fn default_width(self) -> f64 {
        match self {
            ObjectKind::Vehicle => 1.8,
            ObjectKind::Pedestrian => 0.6,
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKind::Vehicle => write!(f, "vehicle"),
            ObjectKind::Pedestrian => write!(f, "pedestrian"),
        }
    }
}

/// A snapshot of one object's kinematic state at a given instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectState {
    /// Identity of the object.
    pub id: ObjectId,
    /// Kind of road user.
    pub kind: ObjectKind,
    /// Planar position, world frame.
    pub position: Vec2,
    /// Planar velocity, world frame, m/s.
    pub velocity: Vec2,
    /// Heading, radians (may differ from velocity direction at low speed).
    pub heading: f64,
    /// Footprint length along heading, metres.
    pub length: f64,
    /// Footprint width, metres.
    pub width: f64,
}

impl ObjectState {
    /// Creates a state with the kind's default footprint, heading aligned to
    /// the velocity (or 0 when stationary).
    pub fn new(id: ObjectId, kind: ObjectKind, position: Vec2, velocity: Vec2) -> Self {
        let heading = if velocity.norm() > 1e-6 {
            velocity.angle()
        } else {
            0.0
        };
        ObjectState {
            id,
            kind,
            position,
            velocity,
            heading,
            length: kind.default_length(),
            width: kind.default_width(),
        }
    }

    /// Speed, m/s.
    #[inline]
    pub fn speed(&self) -> f64 {
        self.velocity.norm()
    }

    /// The pose of the object.
    #[inline]
    pub fn pose(&self) -> Pose2 {
        Pose2::new(self.position, self.heading)
    }

    /// The oriented footprint of the object.
    #[inline]
    pub fn footprint(&self) -> Obb2 {
        Obb2::new(self.pose(), self.length, self.width)
    }

    /// The state advanced `dt` seconds under constant velocity.
    pub fn advanced(&self, dt: f64) -> ObjectState {
        ObjectState {
            position: self.position + self.velocity * dt,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_defaults() {
        let s = ObjectState::new(
            ObjectId(7),
            ObjectKind::Vehicle,
            Vec2::new(1.0, 2.0),
            Vec2::new(3.0, 4.0),
        );
        assert_eq!(s.speed(), 5.0);
        assert_eq!(s.length, 4.5);
        assert_eq!(s.width, 1.8);
        assert!((s.heading - Vec2::new(3.0, 4.0).angle()).abs() < 1e-12);
    }

    #[test]
    fn stationary_heading_defaults_to_zero() {
        let s = ObjectState::new(ObjectId(1), ObjectKind::Pedestrian, Vec2::ZERO, Vec2::ZERO);
        assert_eq!(s.heading, 0.0);
        assert_eq!(s.length, 0.6);
    }

    #[test]
    fn advanced_moves_position_only() {
        let s = ObjectState::new(
            ObjectId(1),
            ObjectKind::Vehicle,
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
        );
        let s2 = s.advanced(0.5);
        assert_eq!(s2.position, Vec2::new(5.0, 0.0));
        assert_eq!(s2.velocity, s.velocity);
        assert_eq!(s2.id, s.id);
    }

    #[test]
    fn footprint_centered_on_position() {
        let s = ObjectState::new(
            ObjectId(1),
            ObjectKind::Vehicle,
            Vec2::new(5.0, 5.0),
            Vec2::new(1.0, 0.0),
        );
        let fp = s.footprint();
        assert!(fp.contains(Vec2::new(5.0, 5.0)));
        assert!(fp.contains(Vec2::new(7.0, 5.0))); // within half-length
        assert!(!fp.contains(Vec2::new(8.0, 5.0)));
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(format!("{}", ObjectId(3)), "obj#3");
        assert_eq!(format!("{}", ObjectKind::Vehicle), "vehicle");
        assert_eq!(format!("{}", ObjectKind::Pedestrian), "pedestrian");
    }
}
