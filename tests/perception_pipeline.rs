//! Cross-crate integration of the vehicle-side perception pipeline:
//! simulated LiDAR frames → ground removal → coordinate transformation →
//! moving-object extraction, checked against simulator ground truth.

use erpd::prelude::*;

#[test]
fn extraction_recovers_moving_objects_from_simulated_frames() {
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(20)
            .with_n_pedestrians(6)
            // Seed re-pinned for the erpd-rand streams: the cast must put a
            // cleanly separable moving object in the ego's view by frame 2.
            .with_seed(1),
    );
    let ego = s.ego;
    let filter = GroundFilter::new(1.8, 0.1);
    let mut extractor = MovingObjectExtractor::new(ExtractionConfig::default());

    let mut found_moving = false;
    for frame_idx in 0..8 {
        let frame = s.world.scan_vehicle(ego).unwrap();
        let t_lw = Transform3::lidar_to_world(
            frame.sensor_pose.position,
            frame.sensor_pose.heading(),
            frame.sensor_height,
        );
        let world_cloud = filter.apply(&frame.full_cloud()).transformed(&t_lw);
        let out = extractor.process(&world_cloud);

        if frame_idx >= 2 {
            // Every extracted moving object must correspond to a ground-truth
            // entity that is actually moving (no static object leaks).
            let entities = s.world.entities();
            for obj in out.objects.iter().filter(|o| o.moving) {
                let gt = entities
                    .iter()
                    .filter(|e| e.position.distance(obj.centroid) < 3.0)
                    .max_by(|a, b| {
                        a.velocity
                            .norm()
                            .partial_cmp(&b.velocity.norm())
                            .expect("finite speeds")
                    });
                let gt = gt.unwrap_or_else(|| panic!("extracted object at {} matches no entity", obj.centroid));
                assert!(
                    gt.velocity.norm() > 0.3,
                    "extracted 'moving' object at {} is actually static ({:?})",
                    obj.centroid,
                    gt.kind
                );
                found_moving = true;
            }
        }
        s.world.step();
    }
    assert!(found_moving, "the ego must extract at least one moving object");
}

#[test]
fn extracted_upload_survives_compression_round_trip() {
    let s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::RedLightViolation)
            .with_n_vehicles(16)
            .with_seed(3),
    );
    let frame = s.world.scan_vehicle(s.ego).unwrap();
    let cloud = frame.full_cloud();
    let bytes = compress(&cloud);
    let restored = decompress(&bytes).unwrap();
    assert_eq!(restored.len(), cloud.len());
    assert!(bytes.len() < cloud.wire_size_bytes());
    // Centroid is preserved within the quantisation error.
    let c0 = cloud.centroid().unwrap();
    let c1 = restored.centroid().unwrap();
    assert!(c0.distance(c1) < 0.05, "centroid drift {}", c0.distance(c1));
}

#[test]
fn static_trucks_are_never_uploaded_but_emp_style_raw_includes_them() {
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::RedLightViolation)
            .with_n_vehicles(16)
            .with_seed(3),
    );
    // Find a connected vehicle that can see a parked truck.
    let truck_positions: Vec<Vec2> = s
        .world
        .vehicles()
        .iter()
        .filter(|v| v.parked)
        .map(|v| v.position())
        .collect();
    assert!(!truck_positions.is_empty(), "red-light scenario has waiting trucks");

    let filter = GroundFilter::new(1.8, 0.1);
    let mut extractor = MovingObjectExtractor::new(ExtractionConfig::default());
    let ego = s.ego;
    for _ in 0..5 {
        let frame = s.world.scan_vehicle(ego).unwrap();
        // Raw frames DO include truck returns when visible (what EMP pays
        // for)...
        let t_lw = Transform3::lidar_to_world(
            frame.sensor_pose.position,
            frame.sensor_pose.heading(),
            frame.sensor_height,
        );
        let world_cloud = filter.apply(&frame.full_cloud()).transformed(&t_lw);
        let out = extractor.process(&world_cloud);
        // ...but the extractor never marks a parked truck as moving.
        for obj in out.objects.iter().filter(|o| o.moving) {
            for tp in &truck_positions {
                assert!(
                    obj.centroid.distance(*tp) > 2.0,
                    "parked truck leaked into the upload"
                );
            }
        }
        s.world.step();
    }
}
