//! Contract tests of the fault-injection layer.
//!
//! The load-bearing property: a [`FaultModel`] whose impairment knobs are
//! all zero is *bit-identical* to the ideal network, for every scenario
//! seed and every fault seed. That is what lets the fault layer live on the
//! default code path — ideal-channel figures reproduce exactly, without an
//! `if faults_enabled` fork anywhere in the pipeline.
//!
//! The rest pins the degraded-mode behaviour: a lossy seeded run completes
//! with delivery/staleness metrics populated (no panics), reruns reproduce
//! the exact same fault pattern, and distinct fault seeds draw distinct
//! patterns.

use erpd::prelude::*;
use erpd_rand::proptest::prelude::*;
// Pin the name: both preludes export a `Strategy` (erpd's enum, proptest's
// trait); the explicit import resolves the glob-glob ambiguity in favour of
// the enum this file actually uses.
use erpd::edge::Strategy;

fn reports(scenario_seed: u64, fault: FaultModel, frames: usize) -> Vec<FrameReport> {
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(16)
            .with_seed(scenario_seed),
    );
    let cfg = SystemConfig::new(Strategy::Ours)
        .with_network(NetworkConfig::default().with_fault(fault));
    let mut sys = System::builder(cfg).build(&s.world);
    (0..frames)
        .map(|_| {
            let r = sys.tick(&mut s.world).expect("valid configuration");
            s.world.step();
            r
        })
        .collect()
}

/// Everything except the `times` block (wall clock) must match.
fn identical(a: &FrameReport, b: &FrameReport) -> bool {
    a.upload_bytes == b.upload_bytes
        && a.dissemination_bytes == b.dissemination_bytes
        && a.assignments == b.assignments
        && a.alerted == b.alerted
        && a.detected_positions == b.detected_positions
        && a.predicted_trajectories == b.predicted_trajectories
        && a.expected_uploads == b.expected_uploads
        && a.delivered_uploads == b.delivered_uploads
        && a.lost_uploads == b.lost_uploads
        && a.late_uploads == b.late_uploads
        && a.truncated_uploads == b.truncated_uploads
        && a.coasted_objects == b.coasted_objects
        && a.staleness == b.staleness
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A zero-impairment fault model is transparent: same reports as a
    /// `NetworkConfig` that never mentions faults, whatever the fault seed
    /// (no draw may be consumed when every probability is zero) and
    /// whatever the scenario.
    #[test]
    fn zero_fault_model_is_bit_identical_to_ideal(
        scenario_seed in 0u64..6,
        fault_seed in 0u64..1000,
    ) {
        let ideal = reports(scenario_seed, FaultModel::default(), 25);
        let zero = reports(
            scenario_seed,
            FaultModel::default()
                .with_loss_prob(0.0)
                .with_jitter(0.0)
                .with_churn_prob(0.0)
                .with_truncate_prob(0.0)
                .with_seed(fault_seed),
            25,
        );
        for (k, (a, b)) in ideal.iter().zip(&zero).enumerate() {
            prop_assert!(identical(a, b), "frame {} diverged under a zero fault model", k);
        }
    }
}

#[test]
fn lossy_run_completes_with_metrics_populated() {
    let fault = FaultModel::default().with_loss_prob(0.2).with_seed(9);
    let system = SystemConfig::new(Strategy::Ours)
        .with_network(NetworkConfig::default().with_fault(fault))
        .with_server(ServerConfig::default().with_coast_horizon(1.0));
    let scenario =
        ScenarioConfig::default().with_kind(ScenarioKind::UnprotectedLeftTurn);
    let cfg = RunConfig::new(Strategy::Ours, scenario)
        .with_duration(5.0)
        .with_system(system);
    let r = run(cfg).expect("lossy run must complete without panicking");
    assert!(
        r.delivery_ratio > 0.5 && r.delivery_ratio < 1.0,
        "delivery ratio must reflect ~20% loss, got {}",
        r.delivery_ratio
    );
    assert!(r.coasted_objects > 0.0, "coasting must kick in under loss");
    assert!(r.staleness_p95 > 0.0, "staleness must be measured");
}

#[test]
fn same_fault_seed_reproduces_the_exact_loss_pattern() {
    let fault = FaultModel::default()
        .with_loss_prob(0.25)
        .with_truncate_prob(0.15)
        .with_seed(3);
    let a = reports(1, fault, 30);
    let b = reports(1, fault, 30);
    for (k, (x, y)) in a.iter().zip(&b).enumerate() {
        assert!(identical(x, y), "frame {k}: rerun diverged");
    }
    assert!(
        a.iter().any(|r| r.lost_uploads > 0),
        "a 25% loss run must actually lose uploads"
    );
}

#[test]
fn different_fault_seeds_draw_different_patterns() {
    let base = FaultModel::default().with_loss_prob(0.3);
    let a = reports(1, base.with_seed(0), 30);
    let b = reports(1, base.with_seed(1), 30);
    let losses = |rs: &[FrameReport]| rs.iter().map(|r| r.lost_uploads).collect::<Vec<_>>();
    assert_ne!(
        losses(&a),
        losses(&b),
        "independent fault seeds should not replay the same loss pattern"
    );
}
