//! Pins the single-edge degenerate case of the multi-edge deployment: a
//! 1-edge [`Deployment`] must be plan-for-plan, bit-for-bit identical to
//! a bare [`System`] — same frame reports, same relevance matrices, same
//! dissemination plans, on the ideal *and* the faulty channel.
//!
//! The fingerprints below are the ones `stage_graph_determinism.rs` pins
//! for the bare system, hashed with the same FNV scheme over the same
//! scenario — so this test fails if the deployment's routing, ghost
//! accounting, or track-id namespacing perturbs the single-edge path by
//! even one bit.

use erpd::prelude::*;

/// FNV-1a over a stream of u64 words (same scheme as
/// `stage_graph_determinism.rs`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn push(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(0x100000001b3);
    }

    fn push_f64(&mut self, x: f64) {
        self.push(x.to_bits());
    }
}

fn hash_frame(h: &mut Fnv, r: &FrameReport, sf: &ServerFrame) {
    for &b in &r.upload_bytes {
        h.push(b);
    }
    h.push(r.dissemination_bytes);
    h.push(r.assignments as u64);
    for &a in &r.alerted {
        h.push(a);
    }
    for p in &r.detected_positions {
        h.push_f64(p.x);
        h.push_f64(p.y);
    }
    h.push(r.predicted_trajectories as u64);
    h.push(r.expected_uploads as u64);
    h.push(r.delivered_uploads as u64);
    h.push(r.lost_uploads as u64);
    h.push(r.late_uploads as u64);
    h.push(r.truncated_uploads as u64);
    h.push(r.coasted_objects as u64);
    for &s in &r.staleness {
        h.push_f64(s);
    }
    for (_, sample) in sf.stages.iter() {
        h.push(sample.items as u64);
    }
    for (receiver, object, relevance) in sf.matrix.iter() {
        h.push(receiver.0);
        h.push(object.0);
        h.push_f64(relevance);
    }
    for (&id, &bytes) in &sf.sizes {
        h.push(id.0);
        h.push(bytes);
    }
    for &id in &sf.receivers {
        h.push(id.0);
    }
}

/// The determinism suite's scenario, served by a 1-edge deployment.
fn deployment_fingerprint(fault: FaultModel, coast: f64, frames: usize) -> u64 {
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(24)
            .with_seed(5),
    );
    let cfg = SystemConfig::new(Strategy::Ours)
        .with_network(NetworkConfig::default().with_fault(fault))
        .with_server(ServerConfig::default().with_coast_horizon(coast));
    let mut dep = Deployment::builder()
        .config(cfg)
        .build(&s.world)
        .expect("edge strategy");
    assert_eq!(dep.n_edges(), 1);
    let mut h = Fnv::new();
    for _ in 0..frames {
        let r = dep.tick(&mut s.world).expect("valid configuration");
        hash_frame(&mut h, &r.per_edge[0], dep.edge(0).last_server_frame());
        s.world.step();
    }
    assert_eq!(dep.handovers(), 0, "one edge has nowhere to hand over to");
    h.0
}

#[test]
fn one_edge_deployment_matches_the_pinned_system_fingerprints() {
    // Ideal channel: the exact constant stage_graph_determinism.rs pins
    // for the bare system.
    let ideal = deployment_fingerprint(FaultModel::default(), 0.0, 40);
    assert_eq!(
        ideal, 0x07ed590fdcbdf321,
        "ideal: deployment fingerprint {ideal:#018x} diverged from the bare system"
    );

    // Faulty channel with coasting: loss, jitter, churn, and wire-level
    // truncation all flow through the deployment's frame routing.
    let fault = FaultModel::default()
        .with_loss_prob(0.2)
        .with_jitter(0.02)
        .with_churn_prob(0.05)
        .with_truncate_prob(0.2)
        .with_seed(11);
    let faulty = deployment_fingerprint(fault, 1.0, 40);
    assert_eq!(
        faulty, 0xc4e6e9cb4854091f,
        "faulty: deployment fingerprint {faulty:#018x} diverged from the bare system"
    );
}
