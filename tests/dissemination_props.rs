//! Property-based tests of the dissemination layer across crates: plans
//! are always feasible, relevance-sorted, and consistent with the matrix.

use erpd::prelude::*;
use erpd_rand::proptest::prelude::*;
// Pin the name: both preludes export a `Strategy` (erpd's enum, proptest's
// trait); the explicit import resolves the glob-glob ambiguity in favour of
// the trait this file actually uses.
use erpd_rand::proptest::strategy::Strategy;
use std::collections::BTreeMap;

fn arbitrary_problem() -> impl Strategy<Value = (RelevanceMatrix, BTreeMap<ObjectId, u64>, Vec<ObjectId>)> {
    (
        proptest::collection::vec((0u64..8, 100u64..900, 0.0f64..1.0), 0..40),
        proptest::collection::vec(100u64..109, 1..6),
    )
        .prop_map(|(entries, receivers)| {
            let mut matrix = RelevanceMatrix::new();
            let mut sizes = BTreeMap::new();
            let mut recv: Vec<ObjectId> = receivers.into_iter().map(ObjectId).collect();
            recv.sort();
            recv.dedup();
            for (obj, size, rel) in entries {
                sizes.insert(ObjectId(obj), size);
                for (k, &r) in recv.iter().enumerate() {
                    // Spread relevance deterministically across receivers.
                    let v = (rel * ((k + 1) as f64) / 3.0) % 1.0;
                    matrix.set(r, ObjectId(obj), v);
                }
            }
            (matrix, sizes, recv)
        })
}

proptest! {
    #[test]
    fn greedy_plan_is_feasible_and_positive(
        (matrix, sizes, _recv) in arbitrary_problem(),
        budget in 0u64..20_000,
    ) {
        let plan = greedy_plan(&matrix, &sizes, budget);
        prop_assert!(plan.total_bytes <= budget);
        for a in &plan.assignments {
            prop_assert!(a.relevance > 0.0, "never send irrelevant data");
            prop_assert_eq!(a.size_bytes, sizes[&a.object]);
            prop_assert!((matrix.get(a.receiver, a.object) - a.relevance).abs() < 1e-12);
        }
        // No duplicate (object, receiver) pairs.
        let mut pairs: Vec<_> = plan.assignments.iter().map(|a| (a.object, a.receiver)).collect();
        let n = pairs.len();
        pairs.sort();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), n);
    }

    #[test]
    fn optimal_dominates_greedy(
        (matrix, sizes, _recv) in arbitrary_problem(),
        budget in 1000u64..20_000,
    ) {
        let greedy = greedy_plan(&matrix, &sizes, budget);
        let optimal = optimal_plan(&matrix, &sizes, budget, 10);
        // DP with rounded-up weights is still feasible...
        prop_assert!(optimal.total_bytes <= budget);
        // ...and greedy cannot beat the exact optimum by more than the
        // granularity loss (bounded by one item's value per rounding; use a
        // generous tolerance tied to the instance).
        prop_assert!(greedy.total_relevance <= optimal.total_relevance + 1.0 + 1e-9);
    }

    #[test]
    fn round_robin_cycles_through_everything(
        (matrix, sizes, recv) in arbitrary_problem(),
    ) {
        prop_assume!(!sizes.is_empty() && !recv.is_empty());
        let max_size = sizes.values().copied().max().unwrap_or(0);
        let budget = max_size.max(1) * 2;
        // Run enough frames to guarantee every pair is served.
        let n_pairs = sizes.len() * recv.len();
        let mut offset = 0usize;
        let mut served = std::collections::BTreeSet::new();
        for _ in 0..(n_pairs * 2 + 4) {
            let (plan, next) = round_robin_plan(&sizes, &recv, &matrix, budget, offset);
            prop_assert!(plan.total_bytes <= budget);
            for a in &plan.assignments {
                served.insert((a.receiver, a.object));
            }
            offset = next;
        }
        let expected: usize = recv
            .iter()
            .map(|r| sizes.keys().filter(|&&o| o != *r).count())
            .sum();
        prop_assert_eq!(served.len(), expected, "round robin must reach every pair");
    }

    #[test]
    fn broadcast_is_an_upper_bound(
        (matrix, sizes, recv) in arbitrary_problem(),
        budget in 0u64..50_000,
    ) {
        let broadcast = broadcast_plan(&sizes, &recv, &matrix);
        let greedy = greedy_plan(&matrix, &sizes, budget);
        prop_assert!(broadcast.total_bytes >= greedy.total_bytes);
        prop_assert!(broadcast.total_relevance >= greedy.total_relevance - 1e-9);
        prop_assert_eq!(
            broadcast.assignments.len(),
            recv.iter()
                .map(|r| sizes.keys().filter(|&&o| o != *r).count())
                .sum::<usize>()
        );
    }
}
