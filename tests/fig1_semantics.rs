//! End-to-end integration test of the paper's Fig. 1 semantics: the
//! occluded pedestrian `p` is relevant to the through-driving vehicle `B`
//! and must be disseminated to it, while the left-turning vehicle `A` never
//! receives it.

use erpd::prelude::*;

fn demo() -> Scenario {
    Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::OccludedPedestrian)
            .with_speed_kmh(30.0),
    )
}

#[test]
fn pedestrian_disseminated_to_b_but_not_a() {
    let mut s = demo();
    let mut sys = System::builder(SystemConfig::new(Strategy::Ours)).build(&s.world);
    let a = s.bystander.unwrap();

    let mut b_got_ped = false;
    let mut a_got_ped_committed = false;
    for _ in 0..160 {
        sys.tick(&mut s.world).unwrap();
        let sf = sys.last_server_frame();
        // Find the server's id for the pedestrian (a tracked detection).
        if let Some(ped) = s.world.pedestrian(s.hazard) {
            if let Some(ped_id) = sf.object_near(ped.position(), 3.0) {
                assert!(ped_id.0 >= TRACK_ID_BASE, "pedestrian must be a sensed track");
                if sf.matrix.get(ObjectId(s.ego), ped_id) > 0.0 {
                    b_got_ped = true;
                }
                // Before A commits to the turn, the server cannot know its
                // manoeuvre: the conservative straight hypothesis may make p
                // briefly relevant. Once A is inside the intersection and
                // visibly turning, p must be irrelevant to it — the paper's
                // Fig. 1 claim.
                let a_vehicle = s.world.vehicle(a).unwrap();
                let committed = s.world.map.in_intersection(a_vehicle.position());
                if committed && sf.matrix.get(ObjectId(a), ped_id) > 0.05 {
                    a_got_ped_committed = true;
                }
            }
        }
        s.world.step();
    }
    assert!(b_got_ped, "p must become relevant to B");
    assert!(
        !a_got_ped_committed,
        "p must be irrelevant to A once its left turn is evident"
    );
    // And the collision is actually prevented.
    let hit = s
        .world
        .collisions()
        .iter()
        .any(|&(x, y)| x == s.ego && y == s.hazard);
    assert!(!hit, "B must not hit p under Ours");
}

#[test]
fn without_dissemination_b_hits_p() {
    let mut s = demo();
    for _ in 0..160 {
        s.world.step();
    }
    let hit = s
        .world
        .collisions()
        .iter()
        .any(|&(x, y)| x == s.ego && y == s.hazard);
    assert!(hit, "without the system the demo must end in a collision");
}

#[test]
fn pedestrian_initially_hidden_from_b_but_seen_by_another() {
    let s = demo();
    let ego_frame = s.world.scan_vehicle(s.ego).unwrap();
    assert!(!ego_frame.visible_ids.contains(&s.hazard));
    let someone_sees = s
        .world
        .scan_connected()
        .iter()
        .filter(|f| f.vehicle_id != s.ego)
        .any(|f| f.visible_ids.contains(&s.hazard));
    assert!(someone_sees, "a connected observer must cover the occlusion");
}
