//! Pins the frame-for-frame behaviour of the edge pipeline across the
//! stage-graph refactor: the fingerprints below were captured from the
//! pre-refactor straight-line `EdgeServer::process` / `System::tick`
//! implementation, so a passing run proves the composed stage graph is
//! bit-identical to it — deterministic counters, ids, byte tallies, and
//! every `f64` (positions, relevances, staleness) compared via `to_bits`.
//!
//! The same constants must hold with and without the `parallel` feature
//! (`scripts/ci.sh` runs both flavours) and on ideal *and* faulty
//! networks; wall-clock fields are the only exemption.

use erpd::prelude::*;

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn push(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(0x100000001b3);
    }

    fn push_f64(&mut self, x: f64) {
        self.push(x.to_bits());
    }
}

/// Hashes every deterministic field of a frame report plus the server
/// frame's relevance matrix, sizes, and receivers.
fn hash_frame(h: &mut Fnv, r: &FrameReport, sf: &ServerFrame) {
    for &b in &r.upload_bytes {
        h.push(b);
    }
    h.push(r.dissemination_bytes);
    h.push(r.assignments as u64);
    for &a in &r.alerted {
        h.push(a);
    }
    for p in &r.detected_positions {
        h.push_f64(p.x);
        h.push_f64(p.y);
    }
    h.push(r.predicted_trajectories as u64);
    h.push(r.expected_uploads as u64);
    h.push(r.delivered_uploads as u64);
    h.push(r.lost_uploads as u64);
    h.push(r.late_uploads as u64);
    h.push(r.truncated_uploads as u64);
    h.push(r.coasted_objects as u64);
    for &s in &r.staleness {
        h.push_f64(s);
    }
    // Per-stage item counts are deterministic (seconds are wall clock).
    for (_, sample) in sf.stages.iter() {
        h.push(sample.items as u64);
    }
    for (receiver, object, relevance) in sf.matrix.iter() {
        h.push(receiver.0);
        h.push(object.0);
        h.push_f64(relevance);
    }
    for (&id, &bytes) in &sf.sizes {
        h.push(id.0);
        h.push(bytes);
    }
    for &id in &sf.receivers {
        h.push(id.0);
    }
}

fn fingerprint(strategy: Strategy, fault: FaultModel, coast: f64, frames: usize) -> u64 {
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(24)
            .with_seed(5),
    );
    let cfg = SystemConfig::new(strategy)
        .with_network(NetworkConfig::default().with_fault(fault))
        .with_server(ServerConfig::default().with_coast_horizon(coast));
    let mut sys = System::builder(cfg).build(&s.world);
    let mut h = Fnv::new();
    for _ in 0..frames {
        let r = sys.tick(&mut s.world).expect("valid configuration");
        hash_frame(&mut h, &r, sys.last_server_frame());
        s.world.step();
    }
    h.0
}

fn faulty() -> FaultModel {
    FaultModel::default()
        .with_loss_prob(0.2)
        .with_jitter(0.02)
        .with_churn_prob(0.05)
        .with_truncate_prob(0.2)
        .with_seed(11)
}

#[test]
fn pipeline_fingerprints_match_the_pre_refactor_implementation() {
    let cases: [(&str, Strategy, FaultModel, f64, usize, u64); 5] = [
        ("ours/ideal", Strategy::Ours, FaultModel::default(), 0.0, 40, 0x07ed590fdcbdf321),
        // Re-pinned when truncation faults moved to the wire level: a
        // truncated upload is now clipped as an encoded v1 frame and
        // lossily re-decoded (complete leading objects survive, points
        // carry the codec's quantisation), instead of dropping a suffix
        // of in-memory objects. Zero-fault cases are unaffected — the
        // loopback transport passes uploads through untouched.
        ("ours/faulty", Strategy::Ours, faulty(), 1.0, 40, 0xc4e6e9cb4854091f),
        ("emp/ideal", Strategy::Emp, FaultModel::default(), 0.0, 20, 0x53f3219fc18e761f),
        ("unlimited/ideal", Strategy::Unlimited, FaultModel::default(), 0.0, 20, 0x2ba07434e1666a26),
        ("v2v/ideal", Strategy::V2v, FaultModel::default(), 0.0, 10, 0xe15b19508e53630c),
    ];
    for (name, strategy, fault, coast, frames, expected) in cases {
        let got = fingerprint(strategy, fault, coast, frames);
        assert_eq!(
            got, expected,
            "{name}: fingerprint {got:#018x} != pinned {expected:#018x}"
        );
    }
}
