//! Differential test of the `parallel` feature: the same seeded scenario
//! stepped with one worker thread and with several must produce identical
//! frame reports, field for field — only the `times` block (wall clock) is
//! exempt. This is the contract that lets the parallel pipeline replace
//! the sequential one without re-validating any figure. The fault layer is
//! under the same contract: its draws are pure hashes of
//! `(seed, frame, vehicle, stream)`, so an impaired channel must be exactly
//! as thread-count-independent as an ideal one.

use erpd::prelude::*;

fn run_reports(
    strategy: Strategy,
    fault: FaultModel,
    threads: usize,
    frames: usize,
) -> Vec<FrameReport> {
    set_max_threads(threads);
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(24)
            .with_seed(5),
    );
    let cfg = SystemConfig::new(strategy)
        .with_network(NetworkConfig::default().with_fault(fault))
        .with_server(ServerConfig::default().with_coast_horizon(if fault.is_ideal() {
            0.0
        } else {
            1.0
        }));
    let mut sys = System::builder(cfg).build(&s.world);
    let mut reports = Vec::with_capacity(frames);
    for _ in 0..frames {
        reports.push(sys.tick(&mut s.world).expect("valid configuration"));
        s.world.step();
    }
    reports
}

fn assert_reports_identical(base: &[FrameReport], wide: &[FrameReport]) {
    assert_eq!(base.len(), wide.len());
    for (k, (a, b)) in base.iter().zip(wide).enumerate() {
        assert_eq!(a.upload_bytes, b.upload_bytes, "frame {k}: upload bytes");
        assert_eq!(
            a.dissemination_bytes, b.dissemination_bytes,
            "frame {k}: dissemination bytes"
        );
        assert_eq!(a.assignments, b.assignments, "frame {k}: assignments");
        assert_eq!(a.alerted, b.alerted, "frame {k}: alerted receivers");
        assert_eq!(
            a.detected_positions, b.detected_positions,
            "frame {k}: detected positions"
        );
        assert_eq!(
            a.predicted_trajectories, b.predicted_trajectories,
            "frame {k}: predicted trajectories"
        );
        assert_eq!(
            a.expected_uploads, b.expected_uploads,
            "frame {k}: expected uploads"
        );
        assert_eq!(
            a.delivered_uploads, b.delivered_uploads,
            "frame {k}: delivered uploads"
        );
        assert_eq!(a.lost_uploads, b.lost_uploads, "frame {k}: lost uploads");
        assert_eq!(a.late_uploads, b.late_uploads, "frame {k}: late uploads");
        assert_eq!(
            a.truncated_uploads, b.truncated_uploads,
            "frame {k}: truncated uploads"
        );
        assert_eq!(
            a.coasted_objects, b.coasted_objects,
            "frame {k}: coasted objects"
        );
        assert_eq!(a.staleness, b.staleness, "frame {k}: staleness samples");
    }
}

// One #[test] covers every case: the thread-count override is process wide,
// so sequential use within a single test cannot race the harness.
#[test]
fn thread_count_never_changes_the_reports() {
    let ideal = FaultModel::default();
    let edge_base = run_reports(Strategy::Ours, ideal, 1, 40);
    let edge_wide = run_reports(Strategy::Ours, ideal, 4, 40);
    assert_reports_identical(&edge_base, &edge_wide);

    let v2v_base = run_reports(Strategy::V2v, ideal, 1, 20);
    let v2v_wide = run_reports(Strategy::V2v, ideal, 4, 20);
    assert_reports_identical(&v2v_base, &v2v_wide);

    // Faults enabled: loss, jitter, churn, and truncation all active.
    let faulty = FaultModel::default()
        .with_loss_prob(0.2)
        .with_jitter(0.02)
        .with_churn_prob(0.05)
        .with_truncate_prob(0.2)
        .with_seed(11);
    let faulty_base = run_reports(Strategy::Ours, faulty, 1, 40);
    let faulty_wide = run_reports(Strategy::Ours, faulty, 4, 40);
    assert_reports_identical(&faulty_base, &faulty_wide);
    assert!(
        faulty_base.iter().any(|r| r.lost_uploads > 0),
        "the faulty run must actually lose uploads"
    );

    set_max_threads(0); // restore the default for the rest of the binary
    assert!(max_threads() >= 1);
}
