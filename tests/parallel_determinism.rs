//! Differential test of the `parallel` feature: the same seeded scenario
//! stepped with one worker thread and with several must produce identical
//! frame reports, field for field — only the `times` block (wall clock) is
//! exempt. This is the contract that lets the parallel pipeline replace
//! the sequential one without re-validating any figure.

use erpd::prelude::*;

fn run_reports(strategy: Strategy, threads: usize, frames: usize) -> Vec<FrameReport> {
    set_max_threads(threads);
    let mut s = Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(24)
            .with_seed(5),
    );
    let mut sys = System::new(SystemConfig::new(strategy), &s.world);
    let mut reports = Vec::with_capacity(frames);
    for _ in 0..frames {
        reports.push(sys.tick(&mut s.world));
        s.world.step();
    }
    reports
}

fn assert_reports_identical(base: &[FrameReport], wide: &[FrameReport]) {
    assert_eq!(base.len(), wide.len());
    for (k, (a, b)) in base.iter().zip(wide).enumerate() {
        assert_eq!(a.upload_bytes, b.upload_bytes, "frame {k}: upload bytes");
        assert_eq!(
            a.dissemination_bytes, b.dissemination_bytes,
            "frame {k}: dissemination bytes"
        );
        assert_eq!(a.assignments, b.assignments, "frame {k}: assignments");
        assert_eq!(a.alerted, b.alerted, "frame {k}: alerted receivers");
        assert_eq!(
            a.detected_positions, b.detected_positions,
            "frame {k}: detected positions"
        );
        assert_eq!(
            a.predicted_trajectories, b.predicted_trajectories,
            "frame {k}: predicted trajectories"
        );
    }
}

// One #[test] covers both strategies: the thread-count override is process
// wide, so sequential use within a single test cannot race the harness.
#[test]
fn thread_count_never_changes_the_reports() {
    let edge_base = run_reports(Strategy::Ours, 1, 40);
    let edge_wide = run_reports(Strategy::Ours, 4, 40);
    assert_reports_identical(&edge_base, &edge_wide);

    let v2v_base = run_reports(Strategy::V2v, 1, 20);
    let v2v_wide = run_reports(Strategy::V2v, 4, 20);
    assert_reports_identical(&v2v_base, &v2v_wide);

    set_max_threads(0); // restore the default for the rest of the binary
    assert!(max_threads() >= 1);
}
