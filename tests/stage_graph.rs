//! Differential test of the swappable stage graph: swapping ONE stage
//! (dissemination) must leave every untouched stage's artifact bit-equal,
//! frame for frame, while the swapped stage's output actually differs.
//!
//! The alert threshold is raised above the maximum possible relevance so
//! neither system ever alerts a driver — the two worlds then evolve
//! identically and the server-side artifacts are directly comparable.

use erpd::prelude::*;

fn scenario() -> Scenario {
    Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(20)
            .with_n_pedestrians(6)
            .with_seed(1),
    )
}

#[test]
fn swapping_dissemination_leaves_upstream_stages_bit_identical() {
    // Relevance is capped at 1.0, so a threshold of 2.0 suppresses every
    // alert and keeps both worlds on the same trajectory.
    let cfg = SystemConfig::new(Strategy::Ours).with_alert_threshold(2.0);

    let mut s_default = scenario();
    let mut s_swapped = scenario();
    let mut sys_default = System::builder(cfg).build(&s_default.world);
    let mut sys_swapped = System::builder(cfg)
        .pipeline(
            PipelineBuilder::new(cfg.server, s_swapped.world.map.clone())
                .with_dissemination_stage(Box::new(BroadcastDissemination)),
        )
        .build(&s_swapped.world);

    let mut plans_differed = false;
    for frame in 0..40 {
        let r_default = sys_default.tick(&mut s_default.world).unwrap();
        let r_swapped = sys_swapped.tick(&mut s_swapped.world).unwrap();

        // Upstream artifacts (merge → associate → track → predict →
        // relevance) must be bit-identical: the swap is isolated.
        let f_default = sys_default.last_server_frame();
        let f_swapped = sys_swapped.last_server_frame();
        assert_eq!(f_default.matrix, f_swapped.matrix, "frame {frame}: matrix");
        assert_eq!(f_default.sizes, f_swapped.sizes, "frame {frame}: sizes");
        assert_eq!(
            f_default.receivers, f_swapped.receivers,
            "frame {frame}: receivers"
        );
        assert_eq!(
            f_default.detections, f_swapped.detections,
            "frame {frame}: detections"
        );
        assert_eq!(
            f_default.predicted_trajectories, f_swapped.predicted_trajectories,
            "frame {frame}: predicted trajectories"
        );
        assert_eq!(
            f_default.map_points, f_swapped.map_points,
            "frame {frame}: map points"
        );
        assert_eq!(
            f_default.staleness, f_swapped.staleness,
            "frame {frame}: staleness"
        );

        // The swapped stage must actually be in effect: broadcast ignores
        // the budget and relevance ranking, so once traffic exists its
        // schedule is at least as large, and eventually strictly larger.
        assert!(
            r_swapped.dissemination_bytes >= r_default.dissemination_bytes,
            "frame {frame}: broadcast scheduled less than greedy"
        );
        if r_swapped.dissemination_bytes > r_default.dissemination_bytes {
            plans_differed = true;
        }

        s_default.world.step();
        s_swapped.world.step();
    }
    assert!(
        plans_differed,
        "the swapped dissemination stage never produced a different plan"
    );
}

#[test]
fn builder_default_graph_matches_system_new() {
    // An explicit pipeline with nothing swapped is exactly the default.
    let cfg = SystemConfig::new(Strategy::Ours).with_alert_threshold(2.0);
    let mut s_a = scenario();
    let mut s_b = scenario();
    let mut sys_a = System::builder(cfg).build(&s_a.world);
    let mut sys_b = System::builder(cfg)
        .pipeline(PipelineBuilder::new(cfg.server, s_b.world.map.clone()))
        .build(&s_b.world);
    for frame in 0..20 {
        let r_a = sys_a.tick(&mut s_a.world).unwrap();
        let r_b = sys_b.tick(&mut s_b.world).unwrap();
        assert_eq!(
            r_a.dissemination_bytes, r_b.dissemination_bytes,
            "frame {frame}: bytes"
        );
        assert_eq!(r_a.assignments, r_b.assignments, "frame {frame}: assignments");
        assert_eq!(
            sys_a.last_server_frame().matrix,
            sys_b.last_server_frame().matrix,
            "frame {frame}: matrix"
        );
        s_a.world.step();
        s_b.world.step();
    }
}
