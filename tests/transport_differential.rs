//! Differential tests across the transport seam.
//!
//! 1. **Loopback vs wire codec**: the same scenario served through the
//!    default identity transport and through [`WireTransport`] (every
//!    upload and plan round-trips the v1 wire codec in process). The wire
//!    path quantises point clouds, so detections may move by the codec's
//!    sub-centimetre bound — but counts, byte tallies, and alert decisions
//!    must agree.
//! 2. **TCP daemon vs local reference**: vehicle clients replay a corpus
//!    against a real [`EdgeDaemon`] over sockets, in lockstep, and every
//!    broadcast plan must equal — exactly — what a local [`ServingCore`]
//!    computes from the same codec-round-tripped uploads. Same bytes in,
//!    same code, same plan out: that is the claim that makes the daemon a
//!    drop-in serving path.

use erpd::prelude::*;
use erpd_edge::capacity::build_corpus;
use erpd_edge::wire::write_message;
use std::collections::BTreeMap;
use std::time::Duration;

fn scenario() -> Scenario {
    Scenario::build(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(12)
            .with_seed(3),
    )
}

#[test]
fn loopback_and_wire_transport_agree_frame_for_frame() {
    let run = |wire: bool| {
        let mut s = scenario();
        let cfg = SystemConfig::new(Strategy::Ours);
        let mut builder = System::builder(cfg);
        if wire {
            builder = builder.transport(Box::new(WireTransport::new()));
        }
        let mut sys = builder.build(&s.world);
        let mut frames = Vec::new();
        for _ in 0..30 {
            let r = sys.tick(&mut s.world).expect("valid configuration");
            frames.push(r);
            s.world.step();
        }
        frames
    };
    let loopback = run(false);
    let wire = run(true);
    for (k, (a, b)) in loopback.iter().zip(&wire).enumerate() {
        assert_eq!(a.expected_uploads, b.expected_uploads, "frame {k}");
        assert_eq!(a.delivered_uploads, b.delivered_uploads, "frame {k}");
        assert_eq!(a.lost_uploads, b.lost_uploads, "frame {k}");
        // Upload byte accounting is integral and codec-exempt.
        assert_eq!(a.upload_bytes, b.upload_bytes, "frame {k}");
        // Detections may shift by the point codec's quantisation, bounded
        // well under a centimetre for intersection-scale clouds.
        assert_eq!(a.detected_positions.len(), b.detected_positions.len(), "frame {k}");
        for (p, q) in a.detected_positions.iter().zip(&b.detected_positions) {
            assert!(
                p.distance(*q) < 0.02,
                "frame {k}: detection moved {} m across the codec",
                p.distance(*q)
            );
        }
        assert_eq!(a.alerted, b.alerted, "frame {k}: alert decisions must agree");
        assert_eq!(a.assignments, b.assignments, "frame {k}");
    }
}

#[test]
fn built_transport_reports_its_name() {
    let s = scenario();
    let sys = System::builder(SystemConfig::new(Strategy::Ours)).build(&s.world);
    assert_eq!(sys.transport_name(), "loopback");
    let sys = System::builder(SystemConfig::new(Strategy::Ours))
        .transport(Box::new(WireTransport::new()))
        .build(&s.world);
    assert_eq!(sys.transport_name(), "wire");
}

#[test]
fn tcp_daemon_matches_local_serving_core_exactly() {
    // A long frame period turns the daemon's early-close policy into pure
    // lockstep: a frame closes exactly when every client has submitted,
    // never on the wall-clock deadline, so daemon frame k IS round k.
    const PERIOD: f64 = 5.0;
    const ROUNDS: usize = 6;
    let system = SystemConfig::new(Strategy::Ours)
        .with_network(NetworkConfig::default().with_frame_period(PERIOD));
    let corpus = build_corpus(
        ScenarioConfig::default()
            .with_kind(ScenarioKind::UnprotectedLeftTurn)
            .with_n_vehicles(12)
            .with_seed(3),
        &system,
        ROUNDS as u64 + 4,
    );
    // The vehicles present in every corpus frame become the clients.
    let mut vehicles: Vec<u64> = corpus.frames[0].iter().map(|u| u.vehicle_id).collect();
    for f in &corpus.frames[..ROUNDS] {
        vehicles.retain(|v| f.iter().any(|u| u.vehicle_id == *v));
    }
    vehicles.truncate(4);
    assert!(vehicles.len() >= 2, "need at least two stable vehicles");

    let mut handle = EdgeDaemon::spawn(
        DaemonConfig::new(system),
        corpus.map.clone(),
        "127.0.0.1:0",
    )
    .expect("daemon binds");
    let mut clients: BTreeMap<u64, TcpTransport> = vehicles
        .iter()
        .map(|&v| {
            let mut t = TcpTransport::connect(handle.addr()).expect("client connects");
            t.send_message(&WireMessage::Hello { vehicle_id: v }).unwrap();
            (v, t)
        })
        .collect();

    // The local reference: the same stage graph the daemon serves, fed
    // the same uploads after the same codec round trip.
    // `build()` defaults the dissemination stage to the greedy knapsack —
    // the same stage `Strategy::Ours` serves with.
    let (server, diss) = PipelineBuilder::new(system.server, corpus.map.clone()).build();
    let mut reference = ServingCore::new(server, diss);
    let budget = system.network.downlink_budget_bytes();

    for round in 0..ROUNDS {
        // Every client sends its upload for this round...
        let mut sent: BTreeMap<u64, erpd_edge::Upload> = BTreeMap::new();
        for (&v, t) in clients.iter_mut() {
            let u = corpus.frames[round]
                .iter()
                .find(|u| u.vehicle_id == v)
                .expect("stable vehicle uploads every round")
                .clone();
            t.send_message(&WireMessage::Upload { frame: round as u64, upload: u.clone() })
                .unwrap();
            sent.insert(v, u);
        }
        // ...and waits for the daemon's broadcast (lockstep).
        let mut daemon_plans = Vec::new();
        for (&v, t) in clients.iter_mut() {
            loop {
                let msg = t
                    .recv_message(Duration::from_secs(20))
                    .expect("daemon responds")
                    .expect("stream stays open");
                if let WireMessage::Plan { frame, acks, plan } = msg {
                    if acks.iter().any(|&(av, af)| av == v && af == round as u64) {
                        daemon_plans.push((frame, acks, plan));
                        break;
                    }
                }
            }
        }
        // Every client saw the very same frame and plan.
        for w in daemon_plans.windows(2) {
            assert_eq!(w[0], w[1], "round {round}: broadcast must be uniform");
        }
        let (frame, acks, daemon_plan) = daemon_plans.pop().unwrap();
        assert_eq!(frame, round as u64, "lockstep: daemon frame == round");
        assert_eq!(acks.len(), vehicles.len(), "round {round}: everyone acked");

        // The reference serves the codec-round-tripped uploads in the
        // daemon's (vehicle-sorted) order at the daemon's clock.
        let mut wire = WireTransport::new();
        for u in sent.into_values() {
            wire.send_upload(round as u64, u).unwrap();
        }
        let arrivals = wire.recv_uploads().unwrap();
        let (_, planned) = reference
            .serve(round as f64 * PERIOD, &arrivals, budget)
            .expect("reference serves");
        assert_eq!(
            daemon_plan, planned.artifact,
            "round {round}: the daemon must compute the exact plan the local core does"
        );
    }
    for (_, t) in clients.iter_mut() {
        let _ = t.send_message(&WireMessage::Bye);
    }
    assert_eq!(handle.frames_served(), ROUNDS as u64);
    handle.shutdown();
}

/// `write_message` and the transport's buffered reader interoperate over a
/// plain byte stream — the framing survives arbitrary chunking.
#[test]
fn framing_survives_byte_level_chunking() {
    let plan = DisseminationPlan::default();
    let msg = WireMessage::Plan { frame: 9, acks: vec![(1, 2)], plan };
    let mut bytes = Vec::new();
    write_message(&mut bytes, &msg).unwrap();
    // Feed the stream one byte at a time through decode_frame.
    let mut buf = Vec::new();
    let mut decoded = None;
    for &b in &bytes {
        buf.push(b);
        if let Some((m, used)) = WireMessage::decode_frame(&buf).expect("no corruption") {
            assert_eq!(used, buf.len());
            decoded = Some(m);
        }
    }
    assert_eq!(decoded, Some(msg));
}
