//! Cross-crate integration: the paper's headline safety result, end to end
//! through simulator → extraction → server → knapsack → alerts.

use erpd::prelude::*;

fn scenario(kind: ScenarioKind, seed: u64, speed: f64) -> ScenarioConfig {
    ScenarioConfig::default()
        .with_kind(kind)
        .with_seed(seed)
        .with_speed_kmh(speed)
}

#[test]
fn single_always_collides_in_both_scenarios() {
    for kind in [
        ScenarioKind::UnprotectedLeftTurn,
        ScenarioKind::RedLightViolation,
    ] {
        for seed in [0, 1] {
            let r = run(RunConfig::new(Strategy::Single, scenario(kind, seed, 30.0))).unwrap();
            assert!(!r.safe_passage, "{kind:?} seed {seed} must collide");
            assert_eq!(r.min_distance, 0.0);
        }
    }
}

#[test]
fn ours_prevents_both_scenarios_at_30kmh() {
    for kind in [
        ScenarioKind::UnprotectedLeftTurn,
        ScenarioKind::RedLightViolation,
    ] {
        let r = run(RunConfig::new(Strategy::Ours, scenario(kind, 0, 30.0))).unwrap();
        assert!(r.safe_passage, "{kind:?}: {r:?}");
        assert!(r.min_distance > 0.5, "{kind:?}: min distance {}", r.min_distance);
    }
}

#[test]
fn ours_beats_emp_on_min_distance() {
    let kind = ScenarioKind::UnprotectedLeftTurn;
    let ours = run(RunConfig::new(Strategy::Ours, scenario(kind, 0, 30.0))).unwrap();
    let emp = run(RunConfig::new(Strategy::Emp, scenario(kind, 0, 30.0))).unwrap();
    // Fig 11 shape: with relevance-aware scheduling the ego is warned
    // earlier, so the clearance is at least as large.
    assert!(
        ours.min_distance >= emp.min_distance - 0.5,
        "ours {} vs emp {}",
        ours.min_distance,
        emp.min_distance
    );
}

#[test]
fn emp_degrades_under_tight_downlink() {
    // Shrink the downlink so the round-robin rotation takes many frames to
    // reach the critical pair; relevance-aware scheduling still fits it
    // first.
    let kind = ScenarioKind::UnprotectedLeftTurn;
    let mut unsafe_emp = 0;
    let mut unsafe_ours = 0;
    let tight = SystemConfig::default()
        .with_network(NetworkConfig::default().with_downlink_bps(4e6));
    for seed in [0, 1, 2] {
        let rc_emp =
            RunConfig::new(Strategy::Emp, scenario(kind, seed, 40.0)).with_system(tight);
        let rc_ours =
            RunConfig::new(Strategy::Ours, scenario(kind, seed, 40.0)).with_system(tight);
        if !run(rc_emp).unwrap().safe_passage {
            unsafe_emp += 1;
        }
        if !run(rc_ours).unwrap().safe_passage {
            unsafe_ours += 1;
        }
    }
    assert!(
        unsafe_emp > unsafe_ours,
        "EMP must fail more often under a tight budget: emp {unsafe_emp} vs ours {unsafe_ours}"
    );
}

#[test]
fn deterministic_given_seed() {
    let cfg = RunConfig::new(
        Strategy::Ours,
        scenario(ScenarioKind::RedLightViolation, 3, 30.0),
    );
    let a = run(cfg).unwrap();
    let b = run(cfg).unwrap();
    assert_eq!(a.safe_passage, b.safe_passage);
    assert_eq!(a.min_distance, b.min_distance);
    assert_eq!(a.total_collisions, b.total_collisions);
    assert_eq!(a.upload_mbps_per_vehicle, b.upload_mbps_per_vehicle);
    assert_eq!(a.dissemination_mbps, b.dissemination_mbps);
}
