#!/usr/bin/env bash
# Local CI: exactly what a PR must pass, in the order a failure is cheapest.
#
#   scripts/ci.sh            # build + tests + clippy
#   scripts/ci.sh --quick    # skip clippy (e.g. while iterating)
#
# The tier-1 gate is the first two steps; clippy is kept at -D warnings so
# lint debt cannot accumulate. Every step runs --offline: the workspace is
# hermetic (no crates.io dependencies), so touching the network is a bug.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo build --release --offline --benches --workspace"
cargo build --release --offline --benches --workspace

echo "==> cargo build --release --offline --workspace --bins"
cargo build --release --offline --workspace --bins

echo "==> cargo test -q --offline -p erpd-edge"
cargo test -q --offline -p erpd-edge

echo "==> SoA differential + steady-state-allocation suites (erpd-pointcloud)"
cargo test -q --offline -p erpd-pointcloud \
    --test soa_reference --test dbscan_reference --test steady_state_alloc

echo "==> smoke capacity check (8 clients x 20 frames)"
./target/release/erpd-loadgen --clients 8 --frames 20 \
    --out target/BENCH_capacity_smoke.json
grep -q '"bench": "capacity"' target/BENCH_capacity_smoke.json

echo "==> smoke multi-edge check (2 edges x 32 vehicles)"
./target/release/erpd-multi-edge --edges 2 --vehicles 32 --frames 8 \
    --out target/BENCH_multi_edge_smoke.json >/dev/null
grep -q '"bench": "multi_edge"' target/BENCH_multi_edge_smoke.json

echo "==> examples build without deprecation warnings"
touch examples/*.rs
cargo build --release --offline --examples 2> target/examples_build.log \
    || { cat target/examples_build.log >&2; exit 1; }
if grep -q "deprecated" target/examples_build.log; then
    cat target/examples_build.log >&2
    echo "examples use deprecated APIs (System::new/with_pipeline/with_transport)" >&2
    exit 1
fi

echo "==> cargo build --release --offline --no-default-features"
cargo build --release --offline --no-default-features

echo "==> cargo test -q --offline --no-default-features"
cargo test -q --offline --no-default-features

if [ "$quick" -eq 0 ]; then
    echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
fi

echo "ok"
