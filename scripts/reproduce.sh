#!/usr/bin/env bash
# Reproduces the full evaluation: tests, every paper figure, micro-benches.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --workspace --release

echo "== test suite =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== regenerating every figure (CSVs in results/, tables in EXPERIMENTS.md) =="
cargo run --release -p erpd-bench --bin experiments

echo "== Criterion micro-benches =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done; see EXPERIMENTS.md, results/, test_output.txt, bench_output.txt"
